"""Superblock translation for the ISA interpreter.

A *superblock* is a straight-line run of decoded instructions starting at
some address and ending at the first control transfer (jump, conditional
jump, call, indirect jump/call, return), runtime boundary (``rtcall``,
``trap``) or trampoline-span crossing.  The engine pre-translates each
run into a list of fused step closures that thread register and flag
state directly — no per-instruction fetch, no icache probe, no dispatch
dict lookup — and caches the result keyed on the start address.

Equivalence contract (DESIGN.md §5f): executing a superblock must be
*bit-identical* to single-stepping the same instructions, including the
partial architectural state left behind by a mid-block fault:

- every step commits ``cpu.rip = address + length`` *before* its body
  runs, exactly as :meth:`repro.vm.cpu.CPU.step` does, so a fault in
  step *k* leaves the same ``rip`` either way and a not-taken
  conditional branch falls through correctly;
- step bodies either replicate a handler's semantics exactly
  (specialized closures, including flag types — Python ``bool``\\ s) or
  *are* the handler (the generic fallback calls the bound method with
  the decoded instruction — the same call the dispatch loop makes);
- blocks never span the ``.tramp`` boundary, so every block is entirely
  trampoline code or entirely application code — the traced loop's
  "checks executed" attribution stays exact;
- the caches are coupled: :meth:`repro.vm.cpu.CPU.flush_icache` clears
  the superblock cache together with the decode cache, because step
  closures capture decoded instructions.

Degradation: the ``vm.superblock`` fault point fires at translation
time (low frequency, off the per-instruction hot path).  When it fires
the engine latches itself off for the rest of the run — the CPU falls
back to the single-step loop, never crashes — and the run is accounted
as DEGRADED by the fault campaign.  Because the trace tier
(:mod:`repro.vm.trace`) compiles stitched superblocks, degrading this
engine also latches the trace tier off: the full degradation ladder is
trace → superblock → single-step, with the single-step oracle at the
bottom (DESIGN.md §9).

This module also owns the process-wide engine selection
(:func:`default_engine` / :func:`engine_override`): ``"trace"`` runs
the whole ladder, ``"superblock"`` caps execution at this tier, and
``"single-step"`` pins the reference interpreter.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import List, Optional, Tuple

from repro.errors import VMError
from repro.faults.injector import fault_point
from repro.isa.opcodes import Opcode
from repro.isa.operands import Imm, Mem, Reg
from repro.isa.registers import RSP, Register

_M64 = (1 << 64) - 1
_SIGN = 1 << 63
_RIP = Register.RIP

#: A block never grows past this many instructions; long straight-line
#: runs split into chained blocks (the cap bounds translation latency
#: and mid-block fault-recovery scans).
MAX_BLOCK = 64

#: Opcodes that end a superblock (and are executed as its last step).
TERMINATORS = frozenset({
    Opcode.JMP, Opcode.CALL, Opcode.JMPR, Opcode.CALLR, Opcode.RET,
    Opcode.TRAP, Opcode.RTCALL,
    Opcode.JE, Opcode.JNE, Opcode.JL, Opcode.JLE, Opcode.JG, Opcode.JGE,
    Opcode.JB, Opcode.JBE, Opcode.JA, Opcode.JAE, Opcode.JS, Opcode.JNS,
})

#: Opcodes the coverage hook records edges for: real control transfers
#: that redirect ``rip``.  TRAP/RTCALL end a block (runtime boundary)
#: but fall through, so they are not coverage edges — keeping the edge
#: definition identical between the single-step and superblock loops.
TRANSFER_OPCODES = frozenset({
    Opcode.JMP, Opcode.CALL, Opcode.JMPR, Opcode.CALLR, Opcode.RET,
    Opcode.JE, Opcode.JNE, Opcode.JL, Opcode.JLE, Opcode.JG, Opcode.JGE,
    Opcode.JB, Opcode.JBE, Opcode.JA, Opcode.JAE, Opcode.JS, Opcode.JNS,
})

#: Default engine for newly built CPUs; flipped by
#: :func:`engine_override` (the ``redfat run --engine`` switch).
#: ``"trace"`` selects the full tier ladder (trace above superblocks),
#: ``"superblock"`` caps execution at the superblock tier, and
#: ``"single-step"`` pins the reference interpreter.
_DEFAULT_ENGINE = "trace"

#: Engine-name spellings accepted by the facade/CLI, fastest first.
ENGINE_NAMES = ("trace", "superblock", "single-step")


def default_engine() -> str:
    """The engine newly built CPUs start on (one of :data:`ENGINE_NAMES`)."""
    return _DEFAULT_ENGINE


def default_enabled() -> bool:
    """Whether new CPUs start with superblock translation on — i.e. the
    default engine is anything above the single-step reference loop."""
    return _DEFAULT_ENGINE != "single-step"


def _coerce_engine(engine) -> str:
    if engine == "trace":
        return "trace"
    if engine in ("superblock", True):
        return "superblock"
    if engine in ("single-step", "singlestep", False):
        return "single-step"
    raise ValueError(
        f"unknown VM engine {engine!r}; expected one of {ENGINE_NAMES}"
    )


@contextmanager
def engine_override(engine):
    """Temporarily pick the execution engine for CPUs built inside.

    *engine* is ``"trace"``, ``"superblock"`` or ``"single-step"``
    (booleans still work for the latter two).  Used by ``redfat run
    --engine``, :func:`repro.api.run` and the perfscope recorder to
    measure all three loops on identical inputs.
    """
    global _DEFAULT_ENGINE
    name = _coerce_engine(engine)
    previous = _DEFAULT_ENGINE
    _DEFAULT_ENGINE = name
    try:
        yield
    finally:
        _DEFAULT_ENGINE = previous


class Superblock:
    """One translated straight-line run.

    ``steps`` holds ``(next_rip, fn, arg)`` triples: the run loop stores
    ``next_rip`` into ``cpu.rip`` and calls ``fn(arg)``.  Specialized
    closures ignore *arg*; generic steps are ``(bound handler,
    instruction)`` pairs — the exact call the dispatch loop would make.
    """

    __slots__ = ("start", "steps", "length", "in_trampoline", "last_transfer")

    def __init__(self, start: int, steps: List[tuple], in_trampoline: bool,
                 last_transfer: Optional[int] = None) -> None:
        self.start = start
        self.steps = steps
        self.length = len(steps)
        #: The whole block lies inside the ``.tramp`` segment (blocks
        #: never straddle the boundary), so traced runs attribute
        #: ``length`` check-instructions per execution.
        self.in_trampoline = in_trampoline
        #: Address of the block's final instruction when that instruction
        #: is a control transfer (:data:`TRANSFER_OPCODES`), else None.
        #: The coverage loop records ``(last_transfer, rip-after-block)``
        #: edges from it — the exact edge the single-step loop records
        #: when the same transfer retires.
        self.last_transfer = last_transfer

    def retired_before(self, rip: int) -> int:
        """How many steps retired before the one that left ``cpu.rip``
        at *rip* raised.

        Every step sets ``rip`` to its own ``next_rip`` before running,
        and ``next_rip`` is strictly increasing within a block, so the
        faulting step is the unique one whose ``next_rip`` matches.
        """
        retired = 0
        for next_rip, _fn, _arg in self.steps:
            if next_rip == rip:
                return retired
            retired += 1
        return retired


class SuperblockEngine:
    """Per-CPU translation cache + degradation latch."""

    __slots__ = ("cpu", "cache", "enabled", "degraded", "degraded_reason",
                 "translations")

    def __init__(self, cpu, enabled: Optional[bool] = None) -> None:
        self.cpu = cpu
        self.cache = {}
        self.enabled = default_enabled() if enabled is None else enabled
        self.degraded = False
        self.degraded_reason = ""
        self.translations = 0

    def invalidate(self) -> None:
        """Drop every translated block (call when decoded code changes)."""
        self.cache.clear()

    def degrade(self, reason: str) -> None:
        """Latch the engine off for the rest of this CPU's lifetime.

        The run loop falls back to single-step execution — identical
        semantics, just slower — and telemetry/the fault campaign see
        the run as degraded, never crashed.  The trace tier sits on top
        of this one (its traces stitch superblocks), so degrading here
        cascades: trace → superblock → single-step is the full ladder.
        """
        self.enabled = False
        self.degraded = True
        self.degraded_reason = reason
        self.cache.clear()
        trace = getattr(self.cpu, "trace", None)
        if trace is not None and trace.enabled:
            trace.degrade(f"superblock engine degraded: {reason}")
        tele = self.cpu.telemetry
        if tele is not None:
            tele.count("vm.superblock_degraded")
            tele.event("superblock_degraded", reason=reason)

    def translate(self, address: int) -> Optional[Superblock]:
        """Translate and cache the superblock starting at *address*.

        Returns None when the engine is (or just became) degraded.  A
        decode failure on the *first* instruction propagates — single-
        stepping would fault on the same fetch; a failure further in
        truncates the block so execution reaches the bad address
        naturally, preserving the side effects of the instructions
        before it.
        """
        if not self.enabled:
            return None
        if fault_point("vm.superblock"):
            self.degrade("injected superblock translation fault")
            return None
        cpu = self.cpu
        icache = cpu.icache
        decode_at = cpu._decode_at
        span = cpu.trampoline_span
        tramp_start, tramp_end = span if span is not None else (0, 0)
        start_in_tramp = tramp_start <= address < tramp_end
        instructions = []
        rip = address
        while len(instructions) < MAX_BLOCK:
            if instructions and (tramp_start <= rip < tramp_end) != start_in_tramp:
                break  # never straddle the trampoline boundary
            instruction = icache.get(rip)
            if instruction is None:
                if not instructions:
                    instruction = decode_at(rip)
                else:
                    try:
                        instruction = decode_at(rip)
                    except VMError:
                        break  # reach the undecodable address by executing
            instructions.append(instruction)
            if instruction.opcode in TERMINATORS:
                break
            rip += instruction.length
        last = instructions[-1]
        block = Superblock(
            address, _compile_steps(cpu, instructions), start_in_tramp,
            last.address if last.opcode in TRANSFER_OPCODES else None,
        )
        self.cache[address] = block
        self.translations += 1
        tele = cpu.telemetry
        if tele is not None:
            tele.count("vm.superblocks_translated")
        return block

    def stats(self) -> dict:
        return {
            "translations": self.translations,
            "cached_blocks": len(self.cache),
            "degraded": self.degraded,
        }


# -- the specializer ---------------------------------------------------------
#
# Each helper returns a closure taking one ignored argument so the run
# loop can treat specialized and generic steps uniformly.  Closures bind
# ``regs`` (the CPU's register list — assigned once, never replaced),
# the memory's bound accessors, and ``cpu`` for flags/rip; they must
# leave *identical* architectural state to the handler they replace,
# including flag value types (``bool``).


def _compile_steps(cpu, instructions) -> List[tuple]:
    steps = []
    for instruction in instructions:
        next_rip = instruction.address + instruction.length
        compiled = _specialize(cpu, instruction)
        if compiled is None:
            steps.append(
                (next_rip, cpu._dispatch[instruction.opcode], instruction)
            )
        else:
            steps.append((next_rip, compiled, None))
    return steps


def _make_ea(instruction, mem, regs):
    """An effective-address thunk mirroring ``CPU.effective_address``."""
    disp = mem.disp
    base = mem.base
    index = mem.index
    scale = mem.scale
    if base is _RIP:
        constant = (disp + instruction.address + instruction.length) & _M64
        return lambda: constant
    if base is None and index is None:
        constant = disp & _M64
        return lambda: constant
    if index is None:
        return lambda: (regs[base] + disp) & _M64
    if base is None:
        return lambda: (disp + regs[index] * scale) & _M64
    return lambda: (regs[base] + disp + regs[index] * scale) & _M64


def _read_thunk(cpu, instruction, operand, size):
    """A value thunk mirroring ``CPU._read_operand`` (hook-free: the
    engine only runs when no ``access_hook`` is installed)."""
    regs = cpu.regs
    if type(operand) is Reg:
        reg = operand.reg
        return lambda: regs[reg]
    if type(operand) is Imm:
        value = operand.value & _M64
        return lambda: value
    ea = _make_ea(instruction, operand, regs)
    read_int = cpu.memory.read_int
    return lambda: read_int(ea(), size)


def _specialize(cpu, instruction):  # noqa: C901 - one big opcode switch
    from repro.vm.cpu import _CONDITIONS, _JCC, _SETCC, _signed

    opcode = instruction.opcode
    operands = instruction.operands
    size = instruction.size
    regs = cpu.regs
    memory = cpu.memory
    read_int = memory.read_int
    write_int = memory.write_int

    if opcode is Opcode.MOV:
        dst, src = operands
        if type(dst) is Reg:
            d = dst.reg
            if type(src) is Reg:
                s = src.reg
                if size == 8:
                    def step(_):
                        regs[d] = regs[s]
                else:
                    mask = (1 << (size * 8)) - 1

                    def step(_):
                        regs[d] = regs[s] & mask
                return step
            if type(src) is Imm:
                value = src.value & _M64
                if size != 8:
                    value &= (1 << (size * 8)) - 1

                def step(_):
                    regs[d] = value
                return step
            ea = _make_ea(instruction, src, regs)

            def step(_):
                regs[d] = read_int(ea(), size)
            return step
        if type(dst) is Mem:
            ea = _make_ea(instruction, dst, regs)
            if type(src) is Reg:
                s = src.reg

                def step(_):
                    write_int(ea(), regs[s], size)
                return step
            if type(src) is Imm:
                value = src.value & _M64

                def step(_):
                    write_int(ea(), value, size)
                return step
        return None

    if opcode is Opcode.MOVS:
        dst, src = operands
        d = dst.reg
        ea = _make_ea(instruction, src, regs)

        def step(_):
            regs[d] = read_int(ea(), size, True) & _M64
        return step

    if opcode is Opcode.LEA:
        dst, src = operands
        d = dst.reg
        ea = _make_ea(instruction, src, regs)

        def step(_):
            regs[d] = ea()
        return step

    if opcode in _ALU_SPECIALIZERS:
        dst, src = operands
        if type(dst) is not Reg:
            return None
        if type(src) is Reg:
            s = src.reg
            load_b = lambda: regs[s]  # noqa: E731
        elif type(src) is Imm:
            value = src.value & _M64
            load_b = lambda: value  # noqa: E731
        else:
            return None  # memory source: generic handler (hookable path)
        return _ALU_SPECIALIZERS[opcode](cpu, regs, dst.reg, load_b, _signed)

    if opcode is Opcode.CMP:
        dst, src = operands
        if type(src) is Mem:
            return None
        load_a = _read_thunk(cpu, instruction, dst, size)
        load_b = _read_thunk(cpu, instruction, src, size)

        def step(_):
            a = load_a()
            b = load_b()
            result = (a - b) & _M64
            cpu.cf = b > a
            cpu.of = bool(((a ^ b) & (a ^ result)) & _SIGN)
            cpu.zf = result == 0
            cpu.sf = bool(result & _SIGN)
        return step

    if opcode is Opcode.TEST:
        dst, src = operands
        if type(dst) is Mem or type(src) is Mem:
            return None
        load_a = _read_thunk(cpu, instruction, dst, 8)
        load_b = _read_thunk(cpu, instruction, src, 8)

        def step(_):
            result = load_a() & load_b()
            cpu.cf = False
            cpu.of = False
            cpu.zf = result == 0
            cpu.sf = bool(result & _SIGN)
        return step

    if opcode is Opcode.NOT:
        r = operands[0].reg

        def step(_):
            regs[r] = (~regs[r]) & _M64
        return step

    if opcode is Opcode.NEG:
        r = operands[0].reg

        def step(_):
            value = regs[r]
            result = (-value) & _M64
            regs[r] = result
            cpu.cf = value != 0
            cpu.zf = result == 0
            cpu.sf = bool(result & _SIGN)
        return step

    if opcode in _SETCC:
        condition = _CONDITIONS[_SETCC[opcode]]
        r = operands[0].reg

        def step(_):
            regs[r] = 1 if condition(cpu.zf, cpu.sf, cpu.cf, cpu.of) else 0
        return step

    if opcode is Opcode.PUSH:
        s = operands[0].reg

        def step(_):
            regs[RSP] = rsp = (regs[RSP] - 8) & _M64
            write_int(rsp, regs[s], 8)
        return step

    if opcode is Opcode.POP:
        d = operands[0].reg

        def step(_):
            rsp = regs[RSP]
            regs[d] = read_int(rsp, 8)
            regs[RSP] = (rsp + 8) & _M64
        return step

    if opcode is Opcode.PUSHF:
        def step(_):
            regs[RSP] = rsp = (regs[RSP] - 8) & _M64
            write_int(
                rsp,
                (1 if cpu.zf else 0) | (2 if cpu.sf else 0)
                | (4 if cpu.cf else 0) | (8 if cpu.of else 0),
                8,
            )
        return step

    if opcode is Opcode.POPF:
        def step(_):
            rsp = regs[RSP]
            value = read_int(rsp, 8)
            cpu.zf = bool(value & 1)
            cpu.sf = bool(value & 2)
            cpu.cf = bool(value & 4)
            cpu.of = bool(value & 8)
            regs[RSP] = (rsp + 8) & _M64
        return step

    if opcode is Opcode.JMP:
        target = (
            instruction.address + instruction.length + operands[0].value
        ) & _M64

        def step(_):
            cpu.rip = target
        return step

    if opcode in _JCC:
        condition = _CONDITIONS[_JCC[opcode]]
        target = (
            instruction.address + instruction.length + operands[0].value
        ) & _M64

        def step(_):
            if condition(cpu.zf, cpu.sf, cpu.cf, cpu.of):
                cpu.rip = target
        return step

    if opcode is Opcode.CALL:
        return_address = instruction.address + instruction.length
        target = (return_address + operands[0].value) & _M64

        def step(_):
            regs[RSP] = rsp = (regs[RSP] - 8) & _M64
            write_int(rsp, return_address, 8)
            cpu.rip = target
        return step

    if opcode is Opcode.JMPR:
        r = operands[0].reg

        def step(_):
            cpu.rip = regs[r]
        return step

    if opcode is Opcode.CALLR:
        return_address = instruction.address + instruction.length
        r = operands[0].reg

        def step(_):
            regs[RSP] = rsp = (regs[RSP] - 8) & _M64
            write_int(rsp, return_address, 8)
            cpu.rip = regs[r]
        return step

    if opcode is Opcode.RET:
        def step(_):
            rsp = regs[RSP]
            cpu.rip = read_int(rsp, 8)
            regs[RSP] = (rsp + 8) & _M64
        return step

    if opcode is Opcode.NOP:
        def step(_):
            return None
        return step

    # TRAP, RTCALL, DIV/MOD/IDIV/IMOD, memory-destination ALU, and
    # anything exotic run through the original bound handler.
    return None


def _spec_add(cpu, regs, d, load_b, _signed):
    def step(_):
        a = regs[d]
        b = load_b()
        result = (a + b) & _M64
        regs[d] = result
        cpu.cf = (a + b) > _M64
        cpu.of = bool((~(a ^ b) & (a ^ result)) & _SIGN)
        cpu.zf = result == 0
        cpu.sf = bool(result & _SIGN)
    return step


def _spec_sub(cpu, regs, d, load_b, _signed):
    def step(_):
        a = regs[d]
        b = load_b()
        result = (a - b) & _M64
        regs[d] = result
        cpu.cf = b > a
        cpu.of = bool(((a ^ b) & (a ^ result)) & _SIGN)
        cpu.zf = result == 0
        cpu.sf = bool(result & _SIGN)
    return step


def _spec_logic(operator):
    def make(cpu, regs, d, load_b, _signed):
        def step(_):
            result = operator(regs[d], load_b())
            regs[d] = result
            cpu.cf = False
            cpu.of = False
            cpu.zf = result == 0
            cpu.sf = bool(result & _SIGN)
        return step
    return make


def _spec_imul(cpu, regs, d, load_b, _signed):
    def step(_):
        result = (_signed(regs[d]) * _signed(load_b())) & _M64
        regs[d] = result
        cpu.zf = result == 0
        cpu.sf = bool(result & _SIGN)
        cpu.cf = cpu.of = False
    return step


def _spec_shift(operator):
    # SHL/SHR/SAR update only zf/sf (cf/of keep their prior values),
    # mirroring ``CPU._alu``.
    def make(cpu, regs, d, load_b, _signed):
        def step(_):
            result = operator(regs[d], load_b() & 63, _signed)
            regs[d] = result
            cpu.zf = result == 0
            cpu.sf = bool(result & _SIGN)
        return step
    return make


_ALU_SPECIALIZERS = {
    Opcode.ADD: _spec_add,
    Opcode.SUB: _spec_sub,
    Opcode.AND: _spec_logic(lambda a, b: a & b),
    Opcode.OR: _spec_logic(lambda a, b: a | b),
    Opcode.XOR: _spec_logic(lambda a, b: a ^ b),
    Opcode.IMUL: _spec_imul,
    Opcode.SHL: _spec_shift(lambda a, count, _signed: (a << count) & _M64),
    Opcode.SHR: _spec_shift(lambda a, count, _signed: a >> count),
    Opcode.SAR: _spec_shift(
        lambda a, count, _signed: (_signed(a) >> count) & _M64
    ),
}
