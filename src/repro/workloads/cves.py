"""CVE reproductions with non-incremental overflows (paper §7.2, Table 2).

Each case models the vulnerable allocation/access pattern of its CVE with
an attacker-controlled offset (``arg(0)``).  The malicious input is
crafted exactly as the paper describes: large enough to "skip over" the
16-byte redzone of the victim object and land *inside an adjacent
allocated heap object* — the access pattern (Redzone)-only tools such as
Memcheck cannot distinguish from a valid access, but that pointer
arithmetic checking catches regardless of the offset.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.cc import CompiledProgram, compile_source


@dataclass
class CVECase:
    """One Table 2 row."""

    cve: str
    program_name: str
    source: str
    benign_args: List[int]
    malicious_args: List[int]
    description: str

    def compile(self) -> CompiledProgram:
        return compile_source(self.source)


#: CVE-2012-4295 — wireshark, Fig. 1 of the paper.  The struct's 5-byte
#: m_vc_index_array is written at index speed-1 with attacker-controlled
#: speed.  Victim struct is 24 bytes (rounded to 32 by a redzone
#: allocator), so speed = 60 lands ~27 bytes into the adjacent heap
#: object, past the redzone.
WIRESHARK_2012_4295 = """
struct sdh_g707_format {
    int m_vc_size;
    int m_sdh_line_rate;
    char m_vc_index_array[5];
};

int channelised_fill_sdh_g707_format(struct sdh_g707_format *fmt,
                                     int vc_size, int speed) {
    if (vc_size == 0) return -1;
    fmt->m_vc_size = vc_size;
    fmt->m_sdh_line_rate = speed;
    memset(fmt->m_vc_index_array, 0xff, 5);
    fmt->m_vc_index_array[speed - 1] = 0;   // the CVE: no bound on speed
    return 0;
}

int main() {
    struct sdh_g707_format *fmt = malloc(24);
    int *adjacent = malloc(64);              // the attacker's real target
    adjacent[0] = 0x11223344;
    int speed = arg(0);                      // from a crafted PCAP packet
    channelised_fill_sdh_g707_format(fmt, 3, speed);
    if (adjacent[0] != 0x11223344) print(-1);  // silent corruption
    return 0;
}
"""

#: CVE-2007-3476 — php/libgd: gdImageCreateTrueColor colour-index write
#: with an unvalidated index into im->open[] style arrays.
PHP_2007_3476 = """
int gd_set_open(int *open_slots, int nslots, int index, int value) {
    open_slots[index] = value;               // the CVE: index unchecked
    return 0;
}

int main() {
    int nslots = 16;
    int *open_slots = malloc(8 * nslots);
    int *image_data = malloc(8 * 64);        // adjacent image buffer
    for (int i = 0; i < nslots; i = i + 1) open_slots[i] = 0;
    image_data[0] = 0x5a5a5a5a;
    int index = arg(0);                      // from a crafted GIF
    gd_set_open(open_slots, nslots, index, 0x41414141);
    if (image_data[0] != 0x5a5a5a5a) print(-1);
    return 0;
}
"""

#: CVE-2016-1903 — php/libgd gdImageRotateInterpolated: out-of-bounds
#: *read* through an unvalidated background-colour index.
PHP_2016_1903 = """
int rotate_interpolated(char *palette, int size, int bgd_color) {
    return palette[bgd_color];               // the CVE: OOB read
}

int main() {
    char *palette = malloc(32);
    char *secret = malloc(64);               // adjacent: info leak target
    memset(palette, 5, 32);
    memset(secret, 42, 64);
    int bgd = arg(0);                        // from a crafted call
    int leaked = rotate_interpolated(palette, 32, bgd);
    print(leaked);
    return 0;
}
"""

#: CVE-2016-2335 — 7zip HFS+ handler: attacker-controlled block index
#: used to write into a decode buffer.
SEVENZIP_2016_2335 = """
int hfs_copy_block(char *buffer, int buffer_size, char *block,
                   int block_index, int block_size) {
    int start = block_index * block_size;    // the CVE: index unchecked
    for (int i = 0; i < block_size; i = i + 1)
        buffer[start + i] = block[i];
    return 0;
}

int main() {
    int block_size = 16;
    char *buffer = malloc(64);
    char *victim = malloc(64);               // adjacent heap object
    char *block = malloc(block_size);
    memset(block, 0x61, block_size);
    memset(victim, 7, 64);
    int block_index = arg(0);                // from a crafted HFS+ image
    hfs_copy_block(buffer, 64, block, block_index, block_size);
    if (victim[0] != 7) print(-1);
    return 0;
}
"""


CVE_CASES: List[CVECase] = [
    CVECase(
        cve="CVE-2012-4295",
        program_name="wireshark",
        source=WIRESHARK_2012_4295,
        benign_args=[3],
        # speed-1 = 59 bytes past the array start: well past the victim's
        # 32-byte slot + 16-byte redzone, inside the adjacent object.
        malicious_args=[60],
        description="non-incremental write via unvalidated SDH speed field",
    ),
    CVECase(
        cve="CVE-2007-3476",
        program_name="php",
        source=PHP_2007_3476,
        benign_args=[5],
        # 8-byte elements: index 18 = byte offset 144, past the 128-byte
        # victim slot + redzone, into the adjacent image buffer.
        malicious_args=[18],
        description="unchecked colour-index write in libgd",
    ),
    CVECase(
        cve="CVE-2016-1903",
        program_name="php",
        source=PHP_2016_1903,
        benign_args=[3],
        # byte offset 60: past the 32-byte palette (class slot 48) and its
        # redzone, reading the adjacent secret buffer.
        malicious_args=[60],
        description="out-of-bounds read leaking adjacent heap data",
    ),
    CVECase(
        cve="CVE-2016-2335",
        program_name="7zip",
        source=SEVENZIP_2016_2335,
        benign_args=[1],
        # block 6 * 16 = byte 96: past the 64-byte buffer (slot 96 incl.
        # redzone), writing into the adjacent victim object.
        malicious_args=[6],
        description="unchecked block index write in the HFS+ handler",
    ),
]
