"""MiniC kernels standing in for the SPEC CPU2006 C benchmarks.

Each kernel mimics its namesake's dominant behaviour (hash tables for
perlbench, run-length coding for bzip2, graph relaxation for mcf, ...).
All take ``arg(0)`` = problem size and ``arg(1)`` = mode (1 = train,
2 = ref); benchmarks with low paper coverage gate whole kernels behind
``mode == 2`` so the train workload never reaches them — reproducing the
train-vs-ref coverage gap of Table 1.
"""

from repro.workloads.registry import anti_idiom_block

# -- 400.perlbench: interpreter-style string hashing + dispatch loop -------

_PERL_FP, _PERL_CALLS = anti_idiom_block("perl_magic", 1, offset=4)

PERLBENCH = f"""
{_PERL_FP}

int hash_bytes(char *s, int n) {{
    int h = 5381;
    for (int i = 0; i < n; i = i + 1) h = (h * 33 + s[i]) & 0xffffff;
    return h;
}}

int interp(int *ops, int nops, int *stack) {{
    int sp = 0;
    int acc = 0;
    for (int pc = 0; pc < nops; pc = pc + 1) {{
        int op = ops[pc] % 5;
        if (op == 0) {{ stack[sp] = acc; sp = sp + 1; }}
        else if (op == 1) {{ if (sp > 0) {{ sp = sp - 1; acc = acc + stack[sp]; }} }}
        else if (op == 2) acc = acc * 3 + 1;
        else if (op == 3) acc = acc - ops[pc];
        else acc = acc ^ ops[pc];
    }}
    return acc;
}}

int main() {{
    int n = arg(0);
    int mode = arg(1);
    char *text = malloc(n);
    int *ops = malloc(8 * n);
    int *stack = malloc(8 * (n + 1));
    int *a = malloc(8 * (n + 4));
    srand(7);
    for (int i = 0; i < n; i = i + 1) {{
        text[i] = rand() % 96 + 32;
        ops[i] = rand() % 97;
        a[i] = i;
    }}
    int s = 0;
    for (int round = 0; round < 3; round = round + 1) {{
        s = s + hash_bytes(text, n);
        s = s + interp(ops, n, stack);
    }}
    if (mode == 2) {{
        {_PERL_CALLS}
    }}
    print(s & 0xffffff);
    return 0;
}}
"""

# -- 401.bzip2: run-length encode/decode round trip -------------------------

BZIP2 = """
int rle_encode(char *src, int n, char *dst) {
    int w = 0;
    int i = 0;
    while (i < n) {
        int run = 1;
        while (i + run < n && src[i + run] == src[i] && run < 255) run = run + 1;
        dst[w] = run; w = w + 1;
        dst[w] = src[i]; w = w + 1;
        i = i + run;
    }
    return w;
}

int rle_decode(char *src, int w, char *dst) {
    int out = 0;
    for (int i = 0; i < w; i = i + 2) {
        int run = src[i];
        for (int j = 0; j < run; j = j + 1) { dst[out] = src[i + 1]; out = out + 1; }
    }
    return out;
}

int main() {
    int n = arg(0);
    char *data = malloc(n);
    char *packed = malloc(2 * n + 2);
    char *unpacked = malloc(n + 256);
    srand(11);
    for (int i = 0; i < n; i = i + 1) data[i] = rand() % 4;
    int s = 0;
    for (int round = 0; round < 3; round = round + 1) {
        int w = rle_encode(data, n, packed);
        int out = rle_decode(packed, w, unpacked);
        s = s + w + out;
        for (int i = 0; i < n; i = i + 1) if (unpacked[i] != data[i]) s = s + 1000000;
    }
    print(s);
    return 0;
}
"""

# -- 403.gcc: register-allocation-style graph colouring ---------------------
# The paper reports 14 false-positive sites for gcc; they live in the
# "spill slot" helpers below, which index frames from a shifted base.

_GCC_FP, _GCC_CALLS = anti_idiom_block("gcc_spill", 14, offset=3)

GCC = f"""
{_GCC_FP}

int colour(int *adj, int *colours, int nodes, int degree) {{
    int used = 0;
    for (int v = 0; v < nodes; v = v + 1) {{
        int mask = 0;
        for (int e = 0; e < degree; e = e + 1) {{
            int u = adj[v * degree + e];
            if (colours[u] >= 0) mask = mask | (1 << (colours[u] & 31));
        }}
        int c = 0;
        while ((mask >> c) & 1) c = c + 1;
        colours[v] = c;
        if (c > used) used = c;
    }}
    return used;
}}

int main() {{
    int n = arg(0);
    int mode = arg(1);
    int degree = 4;
    int *adj = malloc(8 * n * degree);
    int *colours = malloc(8 * n);
    int *a = malloc(8 * (n + 3));
    srand(13);
    for (int v = 0; v < n; v = v + 1) {{
        colours[v] = -1;
        a[v] = v;
        for (int e = 0; e < degree; e = e + 1)
            adj[v * degree + e] = rand() % n;
    }}
    int s = colour(adj, colours, n, degree);
    for (int v = 0; v < n; v = v + 1) s = s + colours[v];
    if (mode == 2) {{
        {_GCC_CALLS}
    }}
    print(s);
    return 0;
}}
"""

# -- 429.mcf: Bellman-Ford-style relaxation over a sparse network ------------

MCF = """
struct arc { int from; int to; int cost; };

int main() {
    int n = arg(0);
    int narcs = n * 3;
    struct arc *arcs = malloc(24 * narcs);
    int *dist = malloc(8 * n);
    srand(17);
    for (int i = 0; i < narcs; i = i + 1) {
        arcs[i].from = rand() % n;
        arcs[i].to = rand() % n;
        arcs[i].cost = rand() % 100 + 1;
    }
    for (int v = 1; v < n; v = v + 1) dist[v] = 1 << 30;
    dist[0] = 0;
    for (int round = 0; round < 6; round = round + 1) {
        for (int i = 0; i < narcs; i = i + 1) {
            int from = arcs[i].from;
            int to = arcs[i].to;
            if (dist[from] + arcs[i].cost < dist[to])
                dist[to] = dist[from] + arcs[i].cost;
        }
    }
    int s = 0;
    for (int v = 0; v < n; v = v + 1) if (dist[v] < (1 << 30)) s = s + dist[v];
    print(s);
    return 0;
}
"""

# -- 445.gobmk: influence propagation over a Go board ------------------------

_GOBMK_FP, _GOBMK_CALLS = anti_idiom_block("gobmk_owl", 1, offset=5)

GOBMK = f"""
{_GOBMK_FP}

int main() {{
    int size = 19;
    int rounds = arg(0);
    int mode = arg(1);
    int cells = size * size;
    int *board = malloc(8 * cells);
    int *next = malloc(8 * cells);
    int *a = malloc(8 * (cells + 5));
    srand(19);
    for (int i = 0; i < cells; i = i + 1) {{ board[i] = rand() % 3; a[i] = i; }}
    int s = 0;
    for (int r = 0; r < rounds; r = r + 1) {{
        for (int y = 1; y < size - 1; y = y + 1) {{
            for (int x = 1; x < size - 1; x = x + 1) {{
                int i = y * size + x;
                int inf = board[i] * 4 + board[i - 1] + board[i + 1]
                        + board[i - size] + board[i + size];
                next[i] = inf / 4;
            }}
        }}
        int *tmp = board; board = next; next = tmp;
        s = s + board[rounds * 7 % cells];
    }}
    if (mode == 2) s = s + gobmk_owl_0(a, cells);
    print(s);
    return 0;
}}
"""

# -- 456.hmmer: Viterbi dynamic programming ----------------------------------
# Paper coverage is 48%: half of the kernels only run on ref.

HMMER = """
int viterbi(int *dp, int *emit, int states, int steps) {
    for (int st = 0; st < states; st = st + 1) dp[st] = emit[st];
    for (int t = 1; t < steps; t = t + 1) {
        for (int st = 0; st < states; st = st + 1) {
            int best = dp[(t - 1) * states + st];
            if (st > 0 && dp[(t - 1) * states + st - 1] > best)
                best = dp[(t - 1) * states + st - 1];
            dp[t * states + st] = best + emit[(t * 31 + st) % states];
        }
    }
    int best = 0;
    for (int st = 0; st < states; st = st + 1)
        if (dp[(steps - 1) * states + st] > best) best = dp[(steps - 1) * states + st];
    return best;
}

int forward_sum(int *dp, int *emit, int states, int steps) {
    for (int st = 0; st < states; st = st + 1) dp[st] = emit[st];
    for (int t = 1; t < steps; t = t + 1)
        for (int st = 0; st < states; st = st + 1)
            dp[t * states + st] =
                (dp[(t - 1) * states + st] + emit[(t + st) % states]) % 1000003;
    int s = 0;
    for (int st = 0; st < states; st = st + 1) s = s + dp[(steps - 1) * states + st];
    return s;
}

int main() {
    int states = 16;
    int steps = arg(0);
    int mode = arg(1);
    int *dp = malloc(8 * states * steps);
    int *emit = malloc(8 * states);
    srand(23);
    for (int st = 0; st < states; st = st + 1) emit[st] = rand() % 50;
    int s = viterbi(dp, emit, states, steps);
    if (mode == 2) s = s + forward_sum(dp, emit, states, steps);
    print(s);
    return 0;
}
"""

# -- 458.sjeng: alpha-beta game tree over a toy position ----------------------

SJENG = """
int evaluate(int *pieces, int n) {
    int score = 0;
    for (int i = 0; i < n; i = i + 1) score = score + pieces[i] * ((i & 7) - 3);
    return score;
}

int search(int *pieces, int n, int depth, int side) {
    if (depth == 0) return side * evaluate(pieces, n);
    int best = -(1 << 30);
    for (int move = 0; move < 4; move = move + 1) {
        int square = (depth * 13 + move * 7) % n;
        int saved = pieces[square];
        pieces[square] = (saved + side + move) & 7;
        int value = -search(pieces, n, depth - 1, -side);
        pieces[square] = saved;
        if (value > best) best = value;
    }
    return best;
}

int main() {
    int n = 64;
    int depth = arg(0);
    int *pieces = malloc(8 * n);
    srand(29);
    for (int i = 0; i < n; i = i + 1) pieces[i] = rand() % 8;
    int s = 0;
    for (int game = 0; game < 3; game = game + 1)
        s = s + search(pieces, n, depth, 1);
    print(s);
    return 0;
}
"""

# -- 462.libquantum: quantum register gate simulation ------------------------

LIBQUANTUM = """
int main() {
    int qubits = 10;
    int rounds = arg(0);
    int states = 1 << qubits;
    int *amp = malloc(8 * states);
    for (int i = 0; i < states; i = i + 1) amp[i] = i & 0xff;
    int s = 0;
    for (int r = 0; r < rounds; r = r + 1) {
        int target = r % qubits;
        int bit = 1 << target;
        for (int i = 0; i < states; i = i + 1) {
            if ((i & bit) == 0) {
                int j = i | bit;
                int x = amp[i];
                amp[i] = x + amp[j];
                amp[j] = x - amp[j];
            }
        }
        s = s + amp[(r * 97) % states];
    }
    print(s & 0xffffff);
    return 0;
}
"""

# -- 464.h264ref: sum-of-absolute-differences block search --------------------
# Paper coverage is 20%: four of five kernels are ref-only.

H264REF = """
int sad(char *a, char *b, int w) {
    int s = 0;
    for (int i = 0; i < w * w; i = i + 1) s = s + abs(a[i] - b[i]);
    return s;
}

int motion_search(char *frame, char *refframe, int w, int blocks) {
    int best = 1 << 30;
    for (int b = 0; b < blocks; b = b + 1) {
        int d = sad(frame + b * 16, refframe + b * 16, 4);
        if (d < best) best = d;
    }
    return best;
}

int dct_pass(int *coef, int n) {
    for (int i = 0; i + 4 <= n; i = i + 4) {
        int a = coef[i] + coef[i + 3];
        int b = coef[i + 1] + coef[i + 2];
        coef[i] = a + b;
        coef[i + 1] = a - b;
    }
    int s = 0;
    for (int i = 0; i < n; i = i + 1) s = s + coef[i];
    return s;
}

int quant_pass(int *coef, int n) {
    int s = 0;
    for (int i = 0; i < n; i = i + 1) { coef[i] = coef[i] / 3; s = s + coef[i]; }
    return s;
}

int deblock_pass(char *frame, int n) {
    int s = 0;
    for (int i = 1; i < n - 1; i = i + 1) {
        frame[i] = (frame[i - 1] + frame[i] * 2 + frame[i + 1]) / 4;
        s = s + frame[i];
    }
    return s;
}

int main() {
    int n = arg(0);
    int mode = arg(1);
    char *frame = malloc(n + 64);
    char *refframe = malloc(n + 64);
    int *coef = malloc(8 * n);
    srand(31);
    for (int i = 0; i < n; i = i + 1) {
        frame[i] = rand() % 200;
        refframe[i] = rand() % 200;
        coef[i] = rand() % 64;
    }
    int s = motion_search(frame, refframe, n, n / 16);
    if (mode == 2) {
        s = s + dct_pass(coef, n);
        s = s + quant_pass(coef, n);
        s = s + deblock_pass(frame, n);
        s = s + sad(frame, refframe, 8);
    }
    print(s);
    return 0;
}
"""

# -- 433.milc: lattice gauge staple sums ---------------------------------------

MILC = """
int main() {
    int dim = arg(0);
    int sites = dim * dim * dim;
    int *lattice = malloc(8 * sites);
    int *staple = malloc(8 * sites);
    srand(37);
    for (int i = 0; i < sites; i = i + 1) lattice[i] = rand() % 97;
    int s = 0;
    for (int sweep = 0; sweep < 4; sweep = sweep + 1) {
        for (int i = 0; i < sites; i = i + 1) {
            int right = lattice[(i + 1) % sites];
            int up = lattice[(i + dim) % sites];
            int far = lattice[(i + dim * dim) % sites];
            staple[i] = (lattice[i] * 2 + right + up + far) % 1000003;
        }
        for (int i = 0; i < sites; i = i + 1) lattice[i] = staple[i];
        s = s + lattice[sweep * 11 % sites];
    }
    print(s);
    return 0;
}
"""

# -- 470.lbm: D2Q5 lattice-Boltzmann streaming/collision -----------------------

LBM = """
int main() {
    int w = arg(0);
    int h = w;
    int cells = w * h;
    int *density = malloc(8 * cells);
    int *next = malloc(8 * cells);
    srand(41);
    for (int i = 0; i < cells; i = i + 1) density[i] = rand() % 100 + 100;
    int s = 0;
    for (int step = 0; step < 6; step = step + 1) {
        for (int y = 1; y < h - 1; y = y + 1) {
            for (int x = 1; x < w - 1; x = x + 1) {
                int i = y * w + x;
                int flow = density[i - 1] + density[i + 1]
                         + density[i - w] + density[i + w];
                next[i] = (density[i] * 4 + flow) / 8;
            }
        }
        int *tmp = density; density = next; next = tmp;
        s = s + density[(step * 131) % cells];
    }
    print(s);
    return 0;
}
"""

# -- 482.sphinx3: Gaussian mixture scoring --------------------------------------

SPHINX3 = """
int main() {
    int frames = arg(0);
    int mixtures = 8;
    int dims = 13;
    int *features = malloc(8 * frames * dims);
    int *means = malloc(8 * mixtures * dims);
    srand(43);
    for (int i = 0; i < frames * dims; i = i + 1) features[i] = rand() % 64;
    for (int i = 0; i < mixtures * dims; i = i + 1) means[i] = rand() % 64;
    int s = 0;
    for (int f = 0; f < frames; f = f + 1) {
        int best = 1 << 30;
        for (int m = 0; m < mixtures; m = m + 1) {
            int d = 0;
            for (int k = 0; k < dims; k = k + 1) {
                int diff = features[f * dims + k] - means[m * dims + k];
                d = d + diff * diff;
            }
            if (d < best) best = d;
        }
        s = (s + best) % 1000003;
    }
    print(s);
    return 0;
}
"""
