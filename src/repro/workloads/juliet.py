"""A CWE-122 (heap buffer overflow) case generator in the Juliet style.

The paper evaluates the subset of the NIST Juliet test suite containing
*non-incremental* heap overflows: 480 cases, all detected by RedFat and
all missed by redzone-only checking (Table 2, last row).  Juliet cases
are small programs systematically varied over control/data-flow shapes;
we regenerate that structure as the cross product of

    6 flow shapes x 4 victim sizes = 24 distinct source programs,
    x 20 attacker offsets each     = 480 cases.

Every case overflows a heap object with an offset crafted to land inside
the adjacent allocated object (skipping the 16-byte redzone), which is
what makes the whole set invisible to (Redzone)-only tools.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import List

from repro.cc import CompiledProgram, compile_source

#: Victim allocation sizes (distinct low-fat classes and paddings).
SIZES = (24, 64, 100, 256)

#: Attacker offset variants per source program.
VARIANTS_PER_SOURCE = 20

#: The neighbouring object every case overflows into.
NEIGHBOUR_SIZE = 512


def _rounded(size: int) -> int:
    """A redzone allocator's 16-byte rounding of a request."""
    return (size + 15) & ~15


# --------------------------------------------------------------------------
# Flow shapes.  Each is a function of the victim size returning source
# that reads the attack offset from arg(0).  The meaning of arg(0) —
# element index, byte offset, block number — varies per shape, as in
# Juliet's flow variants.
# --------------------------------------------------------------------------


def _shape_index_write(size: int) -> str:
    return f"""
int main() {{
    int *victim = malloc({size});
    char *neighbour = malloc({NEIGHBOUR_SIZE});
    memset(neighbour, 9, {NEIGHBOUR_SIZE});
    int i = arg(0);
    victim[i] = 0x41;                 // CWE-122: unchecked element index
    return 0;
}}
"""


def _shape_byte_write(size: int) -> str:
    return f"""
int main() {{
    char *victim = malloc({size});
    char *neighbour = malloc({NEIGHBOUR_SIZE});
    memset(neighbour, 9, {NEIGHBOUR_SIZE});
    int i = arg(0);
    victim[i] = 0x41;                 // CWE-122: unchecked byte offset
    return 0;
}}
"""


def _shape_loop_write(size: int) -> str:
    return f"""
int main() {{
    char *victim = malloc({size});
    char *neighbour = malloc({NEIGHBOUR_SIZE});
    memset(neighbour, 9, {NEIGHBOUR_SIZE});
    int start = arg(0);
    for (int j = start; j < start + 4; j = j + 1)
        victim[j] = 0x41;             // CWE-122: loop from attacker start
    return 0;
}}
"""


def _shape_memcpy(size: int) -> str:
    return f"""
int main() {{
    char *victim = malloc({size});
    char *neighbour = malloc({NEIGHBOUR_SIZE});
    char *payload = malloc(16);
    memset(payload, 0x42, 16);
    memset(neighbour, 9, {NEIGHBOUR_SIZE});
    int off = arg(0);
    memcpy(victim + off, payload, 8); // CWE-122: unchecked destination
    return 0;
}}
"""


def _shape_helper_index(size: int) -> str:
    return f"""
int compute_index(int raw) {{ return raw * 2 + 1; }}

int main() {{
    char *victim = malloc({size});
    char *neighbour = malloc({NEIGHBOUR_SIZE});
    memset(neighbour, 9, {NEIGHBOUR_SIZE});
    int i = compute_index(arg(0));
    victim[i] = 0x41;                 // CWE-122: index laundered by a call
    return 0;
}}
"""


def _shape_struct_member(size: int) -> str:
    # The victim is a struct whose trailing array is indexed unchecked;
    # arg(0) is the array index (array starts at byte 16 of the struct).
    return f"""
struct record {{
    int kind;
    int length;
    char data[{max(size - 16, 1)}];
}};

int main() {{
    struct record *victim = malloc({size});
    char *neighbour = malloc({NEIGHBOUR_SIZE});
    memset(neighbour, 9, {NEIGHBOUR_SIZE});
    victim->kind = 1;
    int i = arg(0);
    victim->data[i] = 0x41;           // CWE-122: member array overflow
    return 0;
}}
"""


#: shape name -> (source generator, fn(size, byte_offset) -> arg value).
_SHAPES = {
    "index_write": (_shape_index_write, lambda size, off: off // 8),
    "byte_write": (_shape_byte_write, lambda size, off: off),
    "loop_write": (_shape_loop_write, lambda size, off: off),
    "memcpy": (_shape_memcpy, lambda size, off: off),
    "helper_index": (_shape_helper_index, lambda size, off: (off - 1) // 2),
    "struct_member": (_shape_struct_member, lambda size, off: off - 16),
}


@dataclass
class JulietCase:
    """One generated CWE-122 test case."""

    case_id: str
    shape: str
    victim_size: int
    source: str
    malicious_args: List[int]
    benign_args: List[int]

    def compile(self) -> CompiledProgram:
        return _compile_cached(self.source)


@lru_cache(maxsize=None)
def _compile_cached(source: str) -> CompiledProgram:
    return compile_source(source)


def generate_cases(count: int = 480) -> List[JulietCase]:
    """Generate the CWE-122 suite (default: the paper's 480 cases)."""
    cases: List[JulietCase] = []
    for shape_name, (make_source, to_arg) in _SHAPES.items():
        for size in SIZES:
            source = make_source(size)
            # Byte offsets inside the neighbour's allocated payload:
            # past the victim's rounded size + its trailing redzone.
            base = _rounded(size) + 16
            for variant in range(VARIANTS_PER_SOURCE):
                offset = base + 8 * variant
                if shape_name == "helper_index":
                    # helper doubles and adds one: pick an odd offset.
                    offset = base + 8 * variant + 1
                cases.append(
                    JulietCase(
                        case_id=f"CWE122_{shape_name}_{size}_{variant:02d}",
                        shape=shape_name,
                        victim_size=size,
                        source=source,
                        malicious_args=[to_arg(size, offset)],
                        benign_args=[0],
                    )
                )
                if len(cases) == count:
                    return cases
    return cases
