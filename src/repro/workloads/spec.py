"""The SPEC CPU2006 benchmark registry (Table 1).

Each entry pairs our MiniC kernel with the paper's published row so the
harness can print paper-vs-measured.  ``train_args``/``ref_args`` are
``[n, mode]``: the train workload is smaller and sets mode 1, keeping
ref-only code paths unexecuted — which is what produces the partial
coverage column for benchmarks like h264ref (20%) or zeusmp (23%).

Absolute slow-down factors are NOT expected to match the paper (different
substrate, different clock); the reproduction targets are the *shapes*:
column ordering (unoptimized > +elim > +batch > +merge > -size > -reads),
RedFat beating Memcheck, per-benchmark false-positive site counts, the
real calculix/wrf bugs, and the coverage structure.
"""

from __future__ import annotations

from typing import Dict, List

from repro.workloads import spec_c, spec_cpp, spec_fortran
from repro.workloads.registry import PaperRow, SpecBenchmark


def _bench(
    name: str,
    language: str,
    source: str,
    train: List[int],
    ref: List[int],
    paper: tuple,
    fp_sites: int = 0,
    real_bugs: int = 0,
    memcheck_nr: bool = False,
    notes: str = "",
) -> SpecBenchmark:
    coverage, seconds, unopt, elim, batch, merge, size, reads, memcheck = paper
    return SpecBenchmark(
        name=name,
        language=language,
        source=source,
        train_args=train,
        ref_args=ref,
        paper=PaperRow(
            coverage=coverage,
            baseline_seconds=seconds,
            factors=(unopt, elim, batch, merge, size, reads),
            memcheck=memcheck,
        ),
        paper_fp_sites=fp_sites,
        paper_real_bugs=real_bugs,
        memcheck_nr=memcheck_nr,
        notes=notes,
    )


SPEC_BENCHMARKS: List[SpecBenchmark] = [
    _bench("perlbench", "C", spec_c.PERLBENCH, [100, 1], [250, 2],
           (88.9, 286, 12.83, 9.82, 8.26, 7.46, 6.75, 2.26, 29.22), fp_sites=1),
    _bench("bzip2", "C", spec_c.BZIP2, [100, 1], [250, 2],
           (97.0, 452, 7.38, 6.52, 5.99, 5.52, 4.75, 1.98, 7.36)),
    _bench("gcc", "C", spec_c.GCC, [50, 1], [120, 2],
           (66.0, 242, 5.34, 4.49, 4.21, 3.92, 3.52, 1.70, 14.32), fp_sites=14),
    _bench("mcf", "C", spec_c.MCF, [30, 1], [80, 2],
           (98.7, 280, 3.69, 3.64, 3.33, 2.86, 2.67, 1.13, 4.74)),
    _bench("gobmk", "C", spec_c.GOBMK, [1, 1], [3, 2],
           (90.7, 441, 6.83, 4.62, 3.92, 3.75, 3.58, 1.56, 19.84), fp_sites=1),
    _bench("hmmer", "C", spec_c.HMMER, [20, 1], [45, 2],
           (48.0, 341, 17.88, 15.66, 12.94, 10.67, 9.52, 2.20, 12.07)),
    _bench("sjeng", "C", spec_c.SJENG, [1, 1], [2, 2],
           (98.6, 496, 7.48, 5.84, 4.94, 4.75, 4.57, 1.51, 20.59)),
    _bench("libquantum", "C", spec_c.LIBQUANTUM, [1, 1], [2, 2],
           (100.0, 309, 3.32, 3.33, 3.39, 3.38, 2.80, 1.80, 4.73)),
    _bench("h264ref", "C", spec_c.H264REF, [200, 1], [400, 2],
           (20.0, 456, 11.54, 8.87, 7.58, 7.19, 6.34, 1.52, 21.71)),
    _bench("omnetpp", "C++", spec_cpp.OMNETPP, [40, 1], [100, 2],
           (62.8, 306, 3.56, 3.42, 3.00, 2.89, 2.62, 1.40, 12.40)),
    _bench("astar", "C++", spec_cpp.ASTAR, [10, 1], [16, 2],
           (99.7, 389, 4.84, 4.06, 3.75, 3.52, 3.23, 1.25, 7.82)),
    _bench("xalancbmk", "C++", spec_cpp.XALANCBMK, [60, 1], [150, 2],
           (78.9, 195, 7.28, 6.47, 6.14, 6.02, 5.03, 1.13, 22.34)),
    _bench("milc", "C", spec_c.MILC, [4, 1], [6, 2],
           (99.4, 456, 3.98, 3.60, 3.59, 1.91, 1.80, 1.15, 4.68)),
    _bench("lbm", "C", spec_c.LBM, [8, 1], [12, 2],
           (98.8, 236, 5.44, 4.42, 3.79, 1.31, 1.23, 1.05, 7.15)),
    _bench("sphinx3", "C", spec_c.SPHINX3, [8, 1], [20, 2],
           (99.5, 502, 7.36, 7.06, 6.86, 6.60, 5.91, 1.20, 12.85)),
    _bench("namd", "C++", spec_cpp.NAMD, [20, 1], [40, 2],
           (100.0, 349, 7.19, 5.95, 5.29, 2.63, 2.44, 1.28, 7.77)),
    _bench("dealII", "C++", spec_cpp.DEALII, [25, 1], [60, 2],
           (81.7, 282, 7.70, 6.70, 6.45, 5.70, 4.93, 1.71, None),
           memcheck_nr=True,
           notes="Memcheck NR in the paper: large data segments unsupported."),
    _bench("soplex", "C++", spec_cpp.SOPLEX, [8, 1], [12, 2],
           (96.4, 212, 5.00, 4.83, 4.57, 4.09, 3.68, 1.59, 6.24)),
    _bench("povray", "C++", spec_cpp.POVRAY, [40, 1], [100, 2],
           (99.9, 139, 10.91, 8.86, 7.12, 5.35, 4.88, 1.81, 36.96), fp_sites=1),
    _bench("bwaves", "Fortran", spec_fortran.BWAVES, [4, 1], [6, 2],
           (85.2, 344, 7.54, 6.47, 6.25, 6.10, 5.57, 1.26, 10.87), fp_sites=5),
    _bench("gamess", "Fortran", spec_fortran.GAMESS, [12, 1], [24, 2],
           (43.0, 680, 9.04, 6.17, 5.40, 4.34, 4.31, 1.98, 15.41),
           notes="Compiled at -O1 in the paper due to a known miscompare."),
    _bench("zeusmp", "Fortran", spec_fortran.ZEUSMP, [10, 1], [20, 2],
           (23.2, 319, 4.85, 3.89, 3.42, 2.41, 2.42, 1.50, None),
           memcheck_nr=True,
           notes="Memcheck NR in the paper: x87 80-bit floats unsupported."),
    _bench("gromacs", "Fortran", spec_fortran.GROMACS, [60, 1], [150, 2],
           (83.3, 270, 7.40, 3.76, 3.50, 2.28, 2.07, 1.27, 12.72), fp_sites=3),
    _bench("cactusADM", "Fortran", spec_fortran.CACTUSADM, [4, 1], [6, 2],
           (99.9, 460, 8.97, 2.70, 2.56, 2.30, 2.11, 1.13, 14.43)),
    _bench("leslie3d", "Fortran", spec_fortran.LESLIE3D, [4, 1], [6, 2],
           (100.0, 262, 9.38, 8.99, 8.63, 7.86, 7.00, 2.66, 11.23)),
    _bench("calculix", "Fortran", spec_fortran.CALCULIX, [120, 1], [300, 2],
           (28.7, 760, 4.74, 4.47, 5.09, 5.08, 4.68, 1.24, 10.83),
           fp_sites=2, real_bugs=4,
           notes="4 genuine array[-1] read underflows in main()."),
    _bench("GemsFDTD", "Fortran", spec_fortran.GEMSFDTD, [6, 1], [10, 2],
           (98.7, 331, 7.27, 6.67, 6.39, 5.36, 4.93, 2.13, 8.35), fp_sites=32),
    _bench("tonto", "Fortran", spec_fortran.TONTO, [80, 1], [200, 2],
           (95.0, 454, 5.85, 4.03, 3.92, 3.27, 2.90, 1.61, 14.81)),
    _bench("wrf", "Fortran", spec_fortran.WRF, [30, 1], [80, 2],
           (27.0, 420, 8.54, 8.07, 7.82, 6.93, 6.19, 2.38, 13.98),
           fp_sites=26, real_bugs=1,
           notes="1 genuine read overflow in interp_fcn()."),
]

_BY_NAME: Dict[str, SpecBenchmark] = {bench.name: bench for bench in SPEC_BENCHMARKS}


def get_benchmark(name: str) -> SpecBenchmark:
    try:
        return _BY_NAME[name]
    except KeyError:
        raise KeyError(
            f"unknown benchmark {name!r}; choose from {sorted(_BY_NAME)}"
        ) from None
