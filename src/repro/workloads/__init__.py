"""Workloads: the programs the paper evaluates on, rebuilt in MiniC.

- :mod:`repro.workloads.spec` — 29 kernels named after the SPEC CPU2006
  suite, each with ``train`` and ``ref`` inputs (Table 1);
- :mod:`repro.workloads.cves` — the four CVE reproductions with
  attacker-controlled non-incremental offsets (Table 2);
- :mod:`repro.workloads.juliet` — a CWE-122 heap-overflow case generator
  in the style of the NIST Juliet suite (Table 2);
- :mod:`repro.workloads.chrome` — a generated large binary plus the 14
  Kraken-named workloads (Fig. 8).
"""

from repro.workloads.registry import SpecBenchmark, PaperRow
from repro.workloads.spec import SPEC_BENCHMARKS, get_benchmark

__all__ = ["SpecBenchmark", "PaperRow", "SPEC_BENCHMARKS", "get_benchmark"]
