"""MiniC kernels standing in for the SPEC CPU2006 Fortran benchmarks.

Fortran arrays are 1-based (and may start at any lower bound), which
gfortran compiles by *normalising the array base pointer* — e.g.
``REAL, DIMENSION(its:ite) :: fqy`` becomes accesses through ``fqy - its``.
That shifted base is an intentional out-of-bounds pointer and the chief
source of (LowFat) false positives in the paper (§7.1).  Every kernel
below therefore routes part of its work through
:func:`~repro.workloads.registry.anti_idiom_block` helpers, planting
exactly the per-benchmark false-positive site counts Table 1's discussion
reports (bwaves 5, gromacs 3, GemsFDTD 32, wrf 26, calculix 2).

calculix additionally contains 4 genuine ``array[-1]`` read underflows in
``main`` and wrf one read overflow in ``interp_fcn`` — the real bugs both
RedFat and Memcheck detect in the paper (§7.1 "Detected errors").
"""

from repro.workloads.registry import anti_idiom_block

# -- 410.bwaves: 3D blast-wave stencil (5 FP sites) ---------------------------

_BWAVES_FP, _BWAVES_CALLS = anti_idiom_block("bwaves_flux", 5, offset=4)

BWAVES = f"""
{_BWAVES_FP}

int main() {{
    int dim = arg(0);
    int cells = dim * dim * dim;
    int *u = malloc(8 * (cells + 1));
    int *unew = malloc(8 * (cells + 1));
    int *a = malloc(8 * (cells + 1));
    srand(83);
    for (int i = 0; i < cells; i = i + 1) {{ u[i] = rand() % 50; a[i] = i; }}
    int n = cells;
    int s = 0;
    for (int step = 0; step < 3; step = step + 1) {{
        for (int i = dim; i < cells - dim; i = i + 1)
            unew[i] = (u[i] * 2 + u[i - 1] + u[i + 1] + u[i - dim] + u[i + dim]) / 6;
        int *tmp = u; u = unew; unew = tmp;
        s = s + u[(step * 419) % cells];
    }}
    {_BWAVES_CALLS}
    print(s);
    return 0;
}}
"""

# -- 416.gamess: quantum-chemistry-style matrix contractions -------------------
# Paper coverage 43%: two of the four passes are ref-only.

GAMESS = """
int contract(int *m, int *v, int *out, int n) {
    for (int r = 0; r < n; r = r + 1) {
        int acc = 0;
        for (int c = 0; c < n; c = c + 1) acc = acc + m[r * n + c] * v[c];
        out[r] = acc % 1000003;
    }
    int s = 0;
    for (int r = 0; r < n; r = r + 1) s = (s + out[r]) % 1000003;
    return s;
}

int exchange(int *m, int n) {
    int s = 0;
    for (int r = 0; r < n; r = r + 1)
        for (int c = r + 1; c < n; c = c + 1) {
            int t = m[r * n + c];
            m[r * n + c] = m[c * n + r];
            m[c * n + r] = t;
            s = s + t;
        }
    return s;
}

int overlap(int *m, int n) {
    int s = 0;
    for (int r = 0; r < n; r = r + 1) s = s + m[r * n + r];
    return s;
}

int fock_update(int *m, int *v, int n) {
    int s = 0;
    for (int r = 0; r < n; r = r + 1) {
        m[r * n + r] = m[r * n + r] + v[r];
        s = s + m[r * n + r];
    }
    return s;
}

int main() {
    int n = arg(0);
    int mode = arg(1);
    int *m = malloc(8 * n * n);
    int *v = malloc(8 * n);
    int *out = malloc(8 * n);
    srand(89);
    for (int i = 0; i < n * n; i = i + 1) m[i] = rand() % 23;
    for (int i = 0; i < n; i = i + 1) v[i] = rand() % 23;
    int s = contract(m, v, out, n);
    s = s + exchange(m, n);
    if (mode == 2) {
        s = s + overlap(m, n);
        s = s + fock_update(m, v, n);
        s = s + contract(m, out, v, n);
    }
    print(s);
    return 0;
}
"""

# -- 434.zeusmp: magnetohydrodynamics sweeps ------------------------------------
# Paper coverage 23.2%: three of four sweeps are ref-only.

ZEUSMP = """
int sweep_x(int *g, int w, int h) {
    int s = 0;
    for (int y = 0; y < h; y = y + 1)
        for (int x = 1; x < w; x = x + 1) {
            g[y * w + x] = (g[y * w + x] + g[y * w + x - 1]) / 2;
            s = s + g[y * w + x];
        }
    return s;
}

int sweep_y(int *g, int w, int h) {
    int s = 0;
    for (int y = 1; y < h; y = y + 1)
        for (int x = 0; x < w; x = x + 1) {
            g[y * w + x] = (g[y * w + x] + g[(y - 1) * w + x]) / 2;
            s = s + g[y * w + x];
        }
    return s;
}

int source_step(int *g, int *src, int cells) {
    int s = 0;
    for (int i = 0; i < cells; i = i + 1) {
        g[i] = g[i] + src[i] % 5;
        s = s + g[i];
    }
    return s;
}

int pressure(int *g, int *p, int cells) {
    int s = 0;
    for (int i = 0; i < cells; i = i + 1) {
        p[i] = g[i] * g[i] % 10007;
        s = s + p[i];
    }
    return s;
}

int main() {
    int w = arg(0);
    int mode = arg(1);
    int cells = w * w;
    int *g = malloc(8 * cells);
    int *src = malloc(8 * cells);
    int *p = malloc(8 * cells);
    srand(97);
    for (int i = 0; i < cells; i = i + 1) { g[i] = rand() % 100; src[i] = rand() % 100; }
    int s = sweep_x(g, w, w);
    if (mode == 2) {
        s = s + sweep_y(g, w, w);
        s = s + source_step(g, src, cells);
        s = s + pressure(g, p, cells);
    }
    print(s % 1000003);
    return 0;
}
"""

# -- 435.gromacs: molecular force loops (3 FP sites) ------------------------------

_GROMACS_FP, _GROMACS_CALLS = anti_idiom_block("gromacs_bond", 3, offset=3)

GROMACS = f"""
{_GROMACS_FP}

int main() {{
    int n = arg(0);
    int *pos = malloc(8 * (n + 1));
    int *force = malloc(8 * (n + 1));
    int *a = malloc(8 * (n + 1));
    srand(101);
    for (int i = 0; i < n; i = i + 1) {{ pos[i] = rand() % 500; force[i] = 0; a[i] = i; }}
    int s = 0;
    for (int step = 0; step < 3; step = step + 1) {{
        for (int i = 1; i < n; i = i + 1) {{
            int stretch = pos[i] - pos[i - 1] - 10;
            force[i] = force[i] - stretch;
            force[i - 1] = force[i - 1] + stretch;
        }}
        for (int i = 0; i < n; i = i + 1) {{
            pos[i] = pos[i] + force[i] / 16;
            s = s + abs(force[i]);
        }}
    }}
    {_GROMACS_CALLS}
    print(s % 1000003);
    return 0;
}}
"""

# -- 436.cactusADM: Einstein-equation grid update -----------------------------------

CACTUSADM = """
int main() {
    int dim = arg(0);
    int cells = dim * dim * dim;
    int *metric = malloc(8 * cells);
    int *curv = malloc(8 * cells);
    srand(103);
    for (int i = 0; i < cells; i = i + 1) { metric[i] = rand() % 60 + 10; curv[i] = 0; }
    int stride = dim * dim;
    int s = 0;
    for (int step = 0; step < 3; step = step + 1) {
        for (int i = stride; i < cells - stride; i = i + 1) {
            int lap = metric[i - 1] + metric[i + 1] + metric[i - dim]
                    + metric[i + dim] + metric[i - stride] + metric[i + stride]
                    - 6 * metric[i];
            curv[i] = curv[i] + lap / 4;
            metric[i] = metric[i] + curv[i] / 8;
        }
        s = s + metric[(step * 577) % cells];
    }
    print(s % 1000003);
    return 0;
}
"""

# -- 437.leslie3d: compressible-flow stencil ------------------------------------------

LESLIE3D = """
int main() {
    int dim = arg(0);
    int cells = dim * dim * dim;
    int *vel = malloc(8 * cells);
    int *rho = malloc(8 * cells);
    srand(107);
    for (int i = 0; i < cells; i = i + 1) { vel[i] = rand() % 40; rho[i] = rand() % 40 + 10; }
    int s = 0;
    for (int step = 0; step < 4; step = step + 1) {
        for (int i = 1; i < cells - 1; i = i + 1) {
            int fluxl = vel[i - 1] * rho[i - 1];
            int fluxr = vel[i + 1] * rho[i + 1];
            rho[i] = rho[i] + (fluxl - fluxr) / 64;
            if (rho[i] < 1) rho[i] = 1;
        }
        s = s + rho[(step * 701) % cells];
    }
    print(s % 1000003);
    return 0;
}
"""

# -- 454.calculix: structural solver with REAL BUGS (2 FP sites, 4 underflows) ------

_CALCULIX_FP, _CALCULIX_CALLS = anti_idiom_block("calculix_beam", 2, offset=5)

CALCULIX = f"""
{_CALCULIX_FP}

int assemble(int *k, int n) {{
    int s = 0;
    for (int i = 1; i < n; i = i + 1) {{
        k[i] = k[i] + k[i - 1] % 13;
        s = s + k[i];
    }}
    return s;
}}

int solve(int *k, int *u, int n) {{
    for (int i = 0; i < n; i = i + 1) u[i] = k[i] % 29;
    for (int iter = 0; iter < 3; iter = iter + 1)
        for (int i = 1; i < n - 1; i = i + 1)
            u[i] = (u[i - 1] + u[i + 1] + k[i]) / 3;
    int s = 0;
    for (int i = 0; i < n; i = i + 1) s = s + u[i];
    return s;
}}

int main() {{
    int n = arg(0);
    int mode = arg(1);
    int *k = malloc(8 * n);
    int *u = malloc(8 * n);
    int *a = malloc(8 * (n + 1));
    srand(109);
    for (int i = 0; i < n; i = i + 1) {{ k[i] = rand() % 100; a[i] = i; }}
    // The four genuine read underflows the paper reports in main():
    // each reads array[-1], a classic off-by-one on 1-based arrays.
    int s = k[-1] % 7;
    s = s + u[-1] % 7;
    s = s + a[-1] % 7;
    int *stress = malloc(8 * n);
    s = s + stress[-1] % 7;
    for (int i = 0; i < n; i = i + 1) stress[i] = 0;
    s = s + assemble(k, n);
    if (mode == 2) {{
        s = s + solve(k, u, n);
        {_CALCULIX_CALLS}
    }}
    print(s % 1000003);
    return 0;
}}
"""

# -- 459.GemsFDTD: finite-difference time domain (32 FP sites) -----------------------

_GEMS_FP, _GEMS_CALLS = anti_idiom_block("gems_field", 32, offset=3)

GEMSFDTD = f"""
{_GEMS_FP}

int main() {{
    int dim = arg(0);
    int cells = dim * dim;
    int *efield = malloc(8 * (cells + 1));
    int *hfield = malloc(8 * (cells + 1));
    int *a = malloc(8 * (cells + 1));
    srand(113);
    for (int i = 0; i < cells; i = i + 1) {{
        efield[i] = rand() % 30;
        hfield[i] = rand() % 30;
        a[i] = i;
    }}
    int n = cells;
    int s = 0;
    for (int step = 0; step < 2; step = step + 1) {{
        for (int i = 1; i < cells; i = i + 1)
            hfield[i] = hfield[i] + (efield[i] - efield[i - 1]) / 2;
        for (int i = 0; i < cells - 1; i = i + 1)
            efield[i] = efield[i] + (hfield[i + 1] - hfield[i]) / 2;
        s = s + efield[(step * 271) % cells];
    }}
    {_GEMS_CALLS}
    print(s % 1000003);
    return 0;
}}
"""

# -- 465.tonto: quantum crystallography integrals --------------------------------------

TONTO = """
int main() {
    int n = arg(0);
    int *shell = malloc(8 * n);
    int *integrals = malloc(8 * n);
    srand(127);
    for (int i = 0; i < n; i = i + 1) shell[i] = rand() % 64 + 1;
    int s = 0;
    for (int i = 0; i < n; i = i + 1) {
        int acc = 0;
        for (int j = 0; j < i % 16 + 1; j = j + 1)
            acc = acc + shell[(i + j) % n] * shell[(i * 3 + j) % n];
        integrals[i] = acc % 10007;
        s = (s + integrals[i]) % 1000003;
    }
    print(s);
    return 0;
}
"""

# -- 481.wrf: weather model (26 FP sites, 1 real overflow in interp_fcn) ---------------
# Paper coverage 27%: the physics passes are ref-only.

_WRF_FP, _WRF_CALLS = anti_idiom_block("wrf_fqy", 26, offset=3)

WRF = f"""
{_WRF_FP}

int interp_fcn(int *column, int levels) {{
    int s = 0;
    // Genuine read overflow: the loop reads column[levels], one past
    // the end (paper: "a read overflow in the interp_fcn() function").
    for (int k = 0; k < levels; k = k + 1)
        s = s + (column[k] + column[k + 1]) / 2;
    return s;
}}

int microphysics(int *q, int n) {{
    int s = 0;
    for (int i = 0; i < n; i = i + 1) {{
        q[i] = q[i] * 9 / 10 + 1;
        s = s + q[i];
    }}
    return s;
}}

int radiation(int *t, int n) {{
    int s = 0;
    for (int i = 0; i < n; i = i + 1) {{
        t[i] = t[i] + (300 - t[i]) / 8;
        s = s + t[i];
    }}
    return s;
}}

int main() {{
    int n = arg(0);
    int mode = arg(1);
    int levels = 16;
    int *column = malloc(8 * levels);
    int *q = malloc(8 * n);
    int *t = malloc(8 * n);
    int *a = malloc(8 * (n + 1));
    srand(131);
    for (int i = 0; i < levels; i = i + 1) column[i] = rand() % 90;
    for (int i = 0; i < n; i = i + 1) {{ q[i] = rand() % 50; t[i] = rand() % 250; a[i] = i; }}
    int s = interp_fcn(column, levels);
    if (mode == 2) {{
        s = s + microphysics(q, n);
        s = s + radiation(t, n);
        {_WRF_CALLS}
    }}
    print(s % 1000003);
    return 0;
}}
"""
