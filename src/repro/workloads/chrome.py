"""The Chrome/Kraken scalability workload (paper §7.3, Fig. 8).

The paper instruments the ~149 MB Chrome binary with write-only
(Redzone)+(LowFat) checks and measures the Kraken browser benchmark
inside it (1.28x geometric-mean overhead).  Our stand-in is one *large
generated binary* embedding:

- the 14 Kraken sub-benchmarks as MiniC kernels, selected at run time by
  ``arg(0)`` (the "page" the browser loads), and
- hundreds of generated filler functions emulating the vast amount of
  browser code that is instrumented but not exercised by the benchmark —
  the property that makes Chrome hard for binary rewriters is static
  size, not dynamic behaviour.

Scalability is then measured as: the rewriter patches every site of the
large image, the output still runs every kernel correctly, and the
write-only overhead lands in the paper's range.
"""

from __future__ import annotations

from functools import lru_cache
from typing import List

from repro.cc import CompiledProgram, compile_source

#: Kraken sub-benchmark names in the paper's Fig. 8 order, mapped to the
#: selector value ``arg(0)`` and a per-kernel work size ``arg(1)``.
KRAKEN_BENCHMARKS = [
    "ai-astar",
    "audio-beat-detection",
    "audio-dft",
    "audio-fft",
    "audio-oscillator",
    "imaging-gaussian-blur",
    "imaging-darkroom",
    "imaging-desaturate",
    "json-parse-financial",
    "json-stringify-tinderbox",
    "crypto-aes",
    "crypto-ccm",
    "crypto-pbkdf2",
    "crypto-sha256-iterative",
]

#: Fig. 8 reports a 1.28x geometric mean for write-only hardening.
PAPER_KRAKEN_GEOMEAN = 1.28

_KERNELS = """
int kraken_ai_astar(int n) {
    int w = 24;
    int cells = w * w;
    int *cost = malloc(8 * cells);
    int *open = malloc(8 * cells);
    srand(3);
    for (int i = 0; i < cells; i = i + 1) { cost[i] = rand() % 9 + 1; open[i] = -1; }
    open[0] = 0;
    int frontier = 0;
    int tail = 1;
    int *queue = malloc(8 * cells * 4);
    queue[0] = 0;
    while (frontier < tail) {
        int cell = queue[frontier]; frontier = frontier + 1;
        int x = cell % w; int y = cell / w;
        if (x + 1 < w && open[cell + 1] < 0) { open[cell + 1] = open[cell] + cost[cell + 1]; queue[tail] = cell + 1; tail = tail + 1; }
        if (y + 1 < w && open[cell + w] < 0) { open[cell + w] = open[cell] + cost[cell + w]; queue[tail] = cell + w; tail = tail + 1; }
    }
    return open[cells - 1];
}

int kraken_beat_detection(int n) {
    int *signal = malloc(8 * n);
    srand(5);
    for (int i = 0; i < n; i = i + 1) signal[i] = rand() % 200 - 100;
    int beats = 0;
    int energy = 0;
    for (int i = 0; i < n; i = i + 1) {
        energy = (energy * 7 + signal[i] * signal[i]) / 8;
        if (signal[i] * signal[i] > energy * 2) beats = beats + 1;
    }
    return beats;
}

int kraken_dft(int n) {
    int *wave = malloc(8 * n);
    int *re = malloc(8 * 16);
    srand(7);
    for (int i = 0; i < n; i = i + 1) wave[i] = rand() % 100;
    int s = 0;
    for (int k = 0; k < 16; k = k + 1) {
        int acc = 0;
        for (int t = 0; t < n; t = t + 1)
            acc = acc + wave[t] * (((k * t) % 7) - 3);
        re[k] = acc;
        s = (s + abs(acc)) % 1000003;
    }
    return s;
}

int kraken_fft(int n) {
    int *buf = malloc(8 * n);
    srand(11);
    for (int i = 0; i < n; i = i + 1) buf[i] = rand() % 64;
    int span = 1;
    while (span < n) {
        for (int i = 0; i + span < n; i = i + 2 * span) {
            for (int j = 0; j < span; j = j + 1) {
                int a = buf[i + j];
                int b = buf[i + j + span];
                buf[i + j] = a + b;
                buf[i + j + span] = a - b;
            }
        }
        span = span * 2;
    }
    int s = 0;
    for (int i = 0; i < n; i = i + 1) s = (s + abs(buf[i])) % 1000003;
    return s;
}

int kraken_oscillator(int n) {
    int *out = malloc(8 * n);
    int phase = 0;
    for (int i = 0; i < n; i = i + 1) {
        phase = (phase + 37) % 629;
        int tri = phase;
        if (tri > 314) tri = 629 - tri;
        out[i] = tri - 157;
    }
    int s = 0;
    for (int i = 0; i < n; i = i + 1) s = s + abs(out[i]);
    return s % 1000003;
}

int kraken_gaussian_blur(int n) {
    int w = 32;
    int h = n / w;
    int *img = malloc(8 * w * h);
    int *out = malloc(8 * w * h);
    srand(13);
    for (int i = 0; i < w * h; i = i + 1) img[i] = rand() % 256;
    for (int y = 1; y < h - 1; y = y + 1)
        for (int x = 1; x < w - 1; x = x + 1) {
            int i = y * w + x;
            out[i] = (img[i] * 4 + img[i-1] + img[i+1] + img[i-w] + img[i+w]) / 8;
        }
    int s = 0;
    for (int i = 0; i < w * h; i = i + 1) s = s + out[i];
    return s % 1000003;
}

int kraken_darkroom(int n) {
    int *pix = malloc(8 * n);
    srand(17);
    for (int i = 0; i < n; i = i + 1) pix[i] = rand() % 256;
    for (int i = 0; i < n; i = i + 1) {
        int v = pix[i];
        v = v * 9 / 8 - 10;
        if (v < 0) v = 0;
        if (v > 255) v = 255;
        pix[i] = v;
    }
    int s = 0;
    for (int i = 0; i < n; i = i + 1) s = s + pix[i];
    return s % 1000003;
}

int kraken_desaturate(int n) {
    int *rgb = malloc(8 * n * 3);
    int *grey = malloc(8 * n);
    srand(19);
    for (int i = 0; i < n * 3; i = i + 1) rgb[i] = rand() % 256;
    for (int i = 0; i < n; i = i + 1)
        grey[i] = (rgb[i*3] * 3 + rgb[i*3+1] * 6 + rgb[i*3+2]) / 10;
    int s = 0;
    for (int i = 0; i < n; i = i + 1) s = s + grey[i];
    return s % 1000003;
}

int kraken_json_parse(int n) {
    char *text = malloc(n);
    int *values = malloc(8 * n);
    srand(23);
    for (int i = 0; i < n; i = i + 1) {
        int r = i % 8;
        if (r < 5) text[i] = '0' + rand() % 10;
        else if (r == 5) text[i] = ',';
        else if (r == 6) text[i] = '{';
        else text[i] = '}';
    }
    int count = 0;
    int acc = 0;
    int in_num = 0;
    for (int i = 0; i < n; i = i + 1) {
        char c = text[i];
        if (c >= '0' && c <= '9') { acc = acc * 10 + (c - '0'); in_num = 1; }
        else if (in_num) { values[count] = acc; count = count + 1; acc = 0; in_num = 0; }
    }
    int s = count;
    for (int i = 0; i < count; i = i + 1) s = (s + values[i]) % 1000003;
    return s;
}

int kraken_json_stringify(int n) {
    int *values = malloc(8 * n);
    char *out = malloc(n * 8 + 16);
    srand(29);
    for (int i = 0; i < n; i = i + 1) values[i] = rand() % 100000;
    int w = 0;
    for (int i = 0; i < n; i = i + 1) {
        int v = values[i];
        out[w] = '{'; w = w + 1;
        while (v > 0) { out[w] = '0' + v % 10; w = w + 1; v = v / 10; }
        out[w] = '}'; w = w + 1;
    }
    int s = w;
    for (int i = 0; i < w; i = i + 1) s = (s + out[i]) % 1000003;
    return s;
}

int kraken_aes(int n) {
    char *sbox = malloc(256);
    char *state = malloc(n);
    srand(31);
    for (int i = 0; i < 256; i = i + 1) sbox[i] = (i * 7 + 99) % 256;
    for (int i = 0; i < n; i = i + 1) state[i] = rand() % 256;
    for (int round = 0; round < 6; round = round + 1) {
        for (int i = 0; i < n; i = i + 1) state[i] = sbox[state[i]];
        for (int i = 0; i + 1 < n; i = i + 1) state[i] = state[i] ^ state[i + 1];
    }
    int s = 0;
    for (int i = 0; i < n; i = i + 1) s = s + state[i];
    return s % 1000003;
}

int kraken_ccm(int n) {
    char *msg = malloc(n);
    char *mac = malloc(16);
    srand(37);
    for (int i = 0; i < n; i = i + 1) msg[i] = rand() % 256;
    memset(mac, 0, 16);
    for (int i = 0; i < n; i = i + 1) {
        int slot = i % 16;
        mac[slot] = (mac[slot] ^ msg[i]) * 3 % 256;
    }
    int s = 0;
    for (int i = 0; i < 16; i = i + 1) s = s * 31 + mac[i];
    return s % 1000003;
}

int kraken_pbkdf2(int n) {
    int state = 0x1234;
    int *block = malloc(8 * 16);
    for (int i = 0; i < 16; i = i + 1) block[i] = i * 0x9e37;
    for (int iter = 0; iter < n; iter = iter + 1) {
        for (int i = 0; i < 16; i = i + 1) {
            state = (state * 33 + block[i]) & 0xffffff;
            block[i] = block[i] ^ state;
        }
    }
    int s = 0;
    for (int i = 0; i < 16; i = i + 1) s = (s + block[i]) % 1000003;
    return s;
}

int kraken_sha256(int n) {
    int *h = malloc(8 * 8);
    int *w = malloc(8 * 16);
    for (int i = 0; i < 8; i = i + 1) h[i] = i * 0x6a09 + 1;
    for (int i = 0; i < 16; i = i + 1) w[i] = i * 0x428a + 7;
    for (int block = 0; block < n; block = block + 1) {
        for (int t = 0; t < 16; t = t + 1) {
            int ch = (h[4] & h[5]) ^ (~h[4] & h[6]);
            int temp = (h[7] + ch + w[t]) & 0xffffff;
            h[7] = h[6]; h[6] = h[5]; h[5] = h[4];
            h[4] = (h[3] + temp) & 0xffffff;
            h[3] = h[2]; h[2] = h[1]; h[1] = h[0];
            h[0] = (temp * 3) & 0xffffff;
        }
    }
    int s = 0;
    for (int i = 0; i < 8; i = i + 1) s = (s + h[i]) % 1000003;
    return s;
}
"""

#: Default work size per kernel, tuned for ~10-30k baseline instructions.
KERNEL_WORK = {
    "ai-astar": 0,  # fixed-size grid
    "audio-beat-detection": 600,
    "audio-dft": 60,
    "audio-fft": 256,
    "audio-oscillator": 700,
    "imaging-gaussian-blur": 512,
    "imaging-darkroom": 600,
    "imaging-desaturate": 300,
    "json-parse-financial": 500,
    "json-stringify-tinderbox": 120,
    "crypto-aes": 150,
    "crypto-ccm": 500,
    "crypto-pbkdf2": 40,
    "crypto-sha256-iterative": 40,
}

_DISPATCH_NAMES = [
    "kraken_ai_astar",
    "kraken_beat_detection",
    "kraken_dft",
    "kraken_fft",
    "kraken_oscillator",
    "kraken_gaussian_blur",
    "kraken_darkroom",
    "kraken_desaturate",
    "kraken_json_parse",
    "kraken_json_stringify",
    "kraken_aes",
    "kraken_ccm",
    "kraken_pbkdf2",
    "kraken_sha256",
]


def _filler_function(index: int) -> str:
    """One generated never-hot 'browser code' function."""
    variant = index % 4
    if variant == 0:
        body = f"""
    int *a = malloc(8 * (n + 2));
    int s = {index};
    for (int i = 0; i < n; i = i + 1) {{ a[i] = s + i * {index % 7 + 1}; s = s + a[i] % 13; }}
    free(a);
    return s;"""
    elif variant == 1:
        body = f"""
    char *b = malloc(n + 16);
    memset(b, {index % 200}, n);
    int s = 0;
    for (int i = 1; i < n; i = i + 1) b[i] = b[i] ^ b[i - 1];
    for (int i = 0; i < n; i = i + 1) s = s + b[i];
    free(b);
    return s;"""
    elif variant == 2:
        body = f"""
    int s = {index * 3 + 1};
    for (int i = 0; i < n; i = i + 1) {{
        if ((i & 3) == 0) s = s + i;
        else if ((i & 3) == 1) s = s - i / 2;
        else s = s ^ (i * {index % 5 + 2});
    }}
    return s;"""
    else:
        body = f"""
    int *m = malloc(8 * 8);
    for (int i = 0; i < 8; i = i + 1) m[i] = i * {index % 11 + 1};
    int s = 0;
    for (int r = 0; r < n % 8 + 1; r = r + 1)
        for (int i = 0; i < 8; i = i + 1) s = s + m[i] * r;
    free(m);
    return s;"""
    return f"int browser_fn_{index}(int n) {{{body}\n}}\n"


def chrome_source(filler_functions: int = 300) -> str:
    """Generate the Chrome stand-in source."""
    fillers = "\n".join(_filler_function(i) for i in range(filler_functions))
    dispatch = "\n    ".join(
        f"if (which == {i}) return {name}(work);"
        for i, name in enumerate(_DISPATCH_NAMES)
    )
    filler_dispatch = "\n    ".join(
        f"if (which == {1000 + i}) return browser_fn_{i}(work);"
        for i in range(0, filler_functions, max(filler_functions // 8, 1))
    )
    return f"""
{_KERNELS}

{fillers}

int main() {{
    int which = arg(0);
    int work = arg(1);
    {dispatch}
    {filler_dispatch}
    return 0;
}}
"""


@lru_cache(maxsize=4)
def build_chrome(filler_functions: int = 300) -> CompiledProgram:
    """Compile the large browser stand-in binary."""
    return compile_source(chrome_source(filler_functions))


def kraken_args(name: str) -> List[int]:
    """The ``[selector, work]`` inputs for one Kraken sub-benchmark."""
    index = KRAKEN_BENCHMARKS.index(name)
    return [index, KERNEL_WORK[name]]
