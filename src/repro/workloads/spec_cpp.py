"""MiniC kernels standing in for the SPEC CPU2006 C++ benchmarks.

(The point of the C++ rows in the paper is that reassembly-based
rewriters such as RetroWrite cannot handle C++ binaries at all, while the
trampoline approach is language-agnostic; here "C++" benchmarks simply
exercise the object-graph/virtual-dispatch-flavoured workloads their
namesakes are known for.)
"""

from repro.workloads.registry import anti_idiom_block

# -- 471.omnetpp: discrete event simulation on a binary heap ------------------
# Paper coverage 62.8%: statistics collection only runs on ref.

OMNETPP = """
struct event { int time; int kind; };

int heap_push(struct event *heap, int n, int time, int kind) {
    int i = n;
    heap[i].time = time;
    heap[i].kind = kind;
    while (i > 0) {
        int parent = (i - 1) / 2;
        if (heap[parent].time <= heap[i].time) break;
        int tt = heap[parent].time; int kk = heap[parent].kind;
        heap[parent].time = heap[i].time; heap[parent].kind = heap[i].kind;
        heap[i].time = tt; heap[i].kind = kk;
        i = parent;
    }
    return n + 1;
}

int heap_pop(struct event *heap, int n) {
    heap[0].time = heap[n - 1].time;
    heap[0].kind = heap[n - 1].kind;
    n = n - 1;
    int i = 0;
    while (1) {
        int left = 2 * i + 1;
        int right = 2 * i + 2;
        int smallest = i;
        if (left < n && heap[left].time < heap[smallest].time) smallest = left;
        if (right < n && heap[right].time < heap[smallest].time) smallest = right;
        if (smallest == i) break;
        int tt = heap[smallest].time; int kk = heap[smallest].kind;
        heap[smallest].time = heap[i].time; heap[smallest].kind = heap[i].kind;
        heap[i].time = tt; heap[i].kind = kk;
        i = smallest;
    }
    return n;
}

int collect_stats(int *histogram, int buckets, struct event *heap, int n) {
    for (int i = 0; i < n; i = i + 1)
        histogram[heap[i].kind % buckets] = histogram[heap[i].kind % buckets] + 1;
    int s = 0;
    for (int b = 0; b < buckets; b = b + 1) s = s + histogram[b] * b;
    return s;
}

int main() {
    int events = arg(0);
    int mode = arg(1);
    struct event *heap = malloc(16 * (events + 1));
    int *histogram = malloc(8 * 16);
    memset(histogram, 0, 128);
    srand(47);
    int n = 0;
    int clock = 0;
    int s = 0;
    for (int i = 0; i < events; i = i + 1)
        n = heap_push(heap, n, rand() % 10000, rand() % 16);
    while (n > 0) {
        clock = heap[0].time;
        int kind = heap[0].kind;
        n = heap_pop(heap, n);
        if (kind < 4 && n < events) n = heap_push(heap, n, clock + kind + 1, kind + 7);
        s = s + clock % 17;
    }
    if (mode == 2) s = s + collect_stats(histogram, 16, heap, events / 2);
    print(s);
    return 0;
}
"""

# -- 473.astar: grid breadth-first pathfinding ----------------------------------

ASTAR = """
int main() {
    int w = arg(0);
    int cells = w * w;
    int *grid = malloc(8 * cells);
    int *dist = malloc(8 * cells);
    int *queue = malloc(8 * cells * 4);
    srand(53);
    for (int i = 0; i < cells; i = i + 1) {
        grid[i] = rand() % 5;      // 0 is a wall
        dist[i] = -1;
    }
    grid[0] = 1;
    dist[0] = 0;
    int head = 0;
    int tail = 0;
    queue[tail] = 0; tail = tail + 1;
    while (head < tail) {
        int cell = queue[head]; head = head + 1;
        int x = cell % w;
        int y = cell / w;
        for (int dir = 0; dir < 4; dir = dir + 1) {
            int nx = x; int ny = y;
            if (dir == 0) nx = x + 1;
            if (dir == 1) nx = x - 1;
            if (dir == 2) ny = y + 1;
            if (dir == 3) ny = y - 1;
            if (nx >= 0 && nx < w && ny >= 0 && ny < w) {
                int next = ny * w + nx;
                if (grid[next] != 0 && dist[next] < 0) {
                    dist[next] = dist[cell] + grid[next];
                    queue[tail] = next; tail = tail + 1;
                }
            }
        }
    }
    int s = 0;
    for (int i = 0; i < cells; i = i + 1) if (dist[i] > 0) s = s + dist[i];
    print(s);
    return 0;
}
"""

# -- 483.xalancbmk: XML-style tree transformation --------------------------------
# Paper coverage 78.9%: the serializer pass only runs on ref.

XALANCBMK = """
struct tnode { int tag; int value; int first_child; int next_sibling; };

int build(struct tnode *nodes, int count) {
    srand(59);
    for (int i = 0; i < count; i = i + 1) {
        nodes[i].tag = rand() % 8;
        nodes[i].value = rand() % 100;
        nodes[i].first_child = -1;
        nodes[i].next_sibling = -1;
    }
    for (int i = 1; i < count; i = i + 1) {
        int parent = rand() % i;
        if (nodes[parent].first_child < 0) nodes[parent].first_child = i;
        else {
            int child = nodes[parent].first_child;
            while (nodes[child].next_sibling >= 0) child = nodes[child].next_sibling;
            nodes[child].next_sibling = i;
        }
    }
    return 0;
}

int transform(struct tnode *nodes, int count) {
    int s = 0;
    for (int i = 0; i < count; i = i + 1) {
        if (nodes[i].tag == 3) nodes[i].value = nodes[i].value * 2;
        int child = nodes[i].first_child;
        while (child >= 0) {
            s = s + nodes[child].value;
            child = nodes[child].next_sibling;
        }
    }
    return s;
}

int serialize(struct tnode *nodes, int count, char *out) {
    int w = 0;
    for (int i = 0; i < count; i = i + 1) {
        out[w] = nodes[i].tag + 60; w = w + 1;
        out[w] = nodes[i].value & 0x7f; w = w + 1;
    }
    int s = 0;
    for (int i = 0; i < w; i = i + 1) s = s + out[i];
    return s;
}

int main() {
    int count = arg(0);
    int mode = arg(1);
    struct tnode *nodes = malloc(32 * count);
    char *out = malloc(2 * count + 16);
    build(nodes, count);
    int s = 0;
    for (int pass = 0; pass < 3; pass = pass + 1) s = s + transform(nodes, count);
    if (mode == 2) s = s + serialize(nodes, count, out);
    print(s);
    return 0;
}
"""

# -- 444.namd: particle pair-force accumulation -----------------------------------

NAMD = """
int main() {
    int particles = arg(0);
    int *px = malloc(8 * particles);
    int *py = malloc(8 * particles);
    int *fx = malloc(8 * particles);
    int *fy = malloc(8 * particles);
    srand(61);
    for (int i = 0; i < particles; i = i + 1) {
        px[i] = rand() % 1000;
        py[i] = rand() % 1000;
        fx[i] = 0;
        fy[i] = 0;
    }
    for (int i = 0; i < particles; i = i + 1) {
        for (int j = i + 1; j < particles; j = j + 1) {
            int dx = px[i] - px[j];
            int dy = py[i] - py[j];
            int r2 = dx * dx + dy * dy + 1;
            int f = 100000 / r2;
            fx[i] = fx[i] + f * dx / 32;
            fy[i] = fy[i] + f * dy / 32;
            fx[j] = fx[j] - f * dx / 32;
            fy[j] = fy[j] - f * dy / 32;
        }
    }
    int s = 0;
    for (int i = 0; i < particles; i = i + 1) s = s + abs(fx[i]) + abs(fy[i]);
    print(s % 1000003);
    return 0;
}
"""

# -- 447.dealII: compressed-sparse-row matrix-vector products ----------------------

DEALII = """
int main() {
    int rows = arg(0);
    int mode = arg(1);
    int per_row = 5;
    int nnz = rows * per_row;
    int *colidx = malloc(8 * nnz);
    int *values = malloc(8 * nnz);
    int *x = malloc(8 * rows);
    int *y = malloc(8 * rows);
    srand(67);
    for (int r = 0; r < rows; r = r + 1) {
        x[r] = rand() % 16;
        for (int k = 0; k < per_row; k = k + 1) {
            colidx[r * per_row + k] = rand() % rows;
            values[r * per_row + k] = rand() % 9 - 4;
        }
    }
    int s = 0;
    for (int iter = 0; iter < 5; iter = iter + 1) {
        for (int r = 0; r < rows; r = r + 1) {
            int acc = 0;
            for (int k = 0; k < per_row; k = k + 1)
                acc = acc + values[r * per_row + k] * x[colidx[r * per_row + k]];
            y[r] = acc;
        }
        int *tmp = x; x = y; y = tmp;
        s = (s + x[iter * 7 % rows]) % 1000003;
    }
    print(s);
    return 0;
}
"""

# -- 450.soplex: dense simplex-style pivoting ---------------------------------------

SOPLEX = """
int main() {
    int n = arg(0);
    int *tableau = malloc(8 * n * n);
    srand(71);
    for (int i = 0; i < n * n; i = i + 1) tableau[i] = rand() % 19 - 9;
    int s = 0;
    for (int pivot = 0; pivot < n; pivot = pivot + 1) {
        int p = tableau[pivot * n + pivot];
        if (p == 0) p = 1;
        for (int r = 0; r < n; r = r + 1) {
            if (r == pivot) continue;
            int factor = tableau[r * n + pivot] / p;
            if (factor == 0) continue;
            for (int c = 0; c < n; c = c + 1)
                tableau[r * n + c] = tableau[r * n + c] - factor * tableau[pivot * n + c];
        }
        s = (s + tableau[pivot * n + pivot]) % 1000003;
    }
    print(s);
    return 0;
}
"""

# -- 453.povray: fixed-point ray-sphere intersection --------------------------------

_POVRAY_FP, _POVRAY_CALLS = anti_idiom_block("povray_noise", 1, offset=7)

POVRAY = f"""
{_POVRAY_FP}

int isqrt(int v) {{
    if (v <= 0) return 0;
    int x = v;
    for (int i = 0; i < 20; i = i + 1) x = (x + v / x) / 2;
    return x;
}}

int main() {{
    int rays = arg(0);
    int mode = arg(1);
    int spheres = 8;
    int *sx = malloc(8 * spheres);
    int *sy = malloc(8 * spheres);
    int *sr = malloc(8 * spheres);
    int *a = malloc(8 * (rays + 7));
    int n = rays;
    srand(73);
    for (int i = 0; i < spheres; i = i + 1) {{
        sx[i] = rand() % 200 - 100;
        sy[i] = rand() % 200 - 100;
        sr[i] = rand() % 30 + 5;
    }}
    for (int i = 0; i < rays; i = i + 1) a[i] = i;
    int s = 0;
    for (int ray = 0; ray < rays; ray = ray + 1) {{
        int dx = (ray * 37) % 199 - 99;
        int dy = (ray * 61) % 199 - 99;
        int nearest = 1 << 30;
        for (int i = 0; i < spheres; i = i + 1) {{
            int ox = dx - sx[i];
            int oy = dy - sy[i];
            int d2 = ox * ox + oy * oy;
            int r2 = sr[i] * sr[i];
            if (d2 < r2) {{
                int t = isqrt(r2 - d2);
                if (t < nearest) nearest = t;
            }}
        }}
        if (nearest < (1 << 30)) s = s + nearest;
    }}
    if (mode == 2) {{
        {_POVRAY_CALLS}
    }}
    print(s);
    return 0;
}}
"""
