"""Ground-truth corpus and scoring for ``redfat audit``.

Run: ``python -m repro.workloads.auditcorpus [--juliet N]``

The corpus bakes the repo's workloads into *static* audit targets:

- every CVE case (:mod:`repro.workloads.cves`) with its malicious
  argument baked in (the seeded must-error) and with its benign
  argument baked in (a clean binary),
- a slice of the CWE-122 Juliet suite (:mod:`repro.workloads.juliet`),
  one malicious + one benign bake per flow shape × victim size,
- synthetic double-free / invalid-free programs (the free-audit kinds
  the CVE corpus does not cover),
- the SPEC stand-ins (:mod:`repro.workloads.spec`) as clean binaries —
  the paper's "no false positives on SPEC" criterion.

``evaluate()`` audits every target and scores it against the expected
finding kinds, printing per-corpus precision/recall the way the paper
prints a Table row.  The module's ``main`` exits nonzero when any seeded
must-error is missed or any clean binary gets a finding — the CI
``audit`` job's contract.
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.cc import compile_source
from repro.workloads.cves import CVE_CASES
from repro.workloads.juliet import generate_cases
from repro.workloads.spec import SPEC_BENCHMARKS

#: Synthetic programs for the free-audit kinds.  Each entry is
#: (name, source, expected kind or None-for-clean).
SYNTHETIC_CASES: Tuple[Tuple[str, str, Optional[str]], ...] = (
    (
        "double-free",
        """
int main() {
    int *p = malloc(32);
    p[0] = 1;
    free(p);
    free(p);
    return 0;
}
""",
        "double-free",
    ),
    (
        "double-free-helper",
        """
int release(int *p) { free(p); return 0; }

int main() {
    int *p = malloc(48);
    release(p);
    release(p);
    return 0;
}
""",
        "double-free",
    ),
    (
        "invalid-free-integer",
        """
int main() {
    free(1234);
    return 0;
}
""",
        "invalid-free",
    ),
    (
        "invalid-free-interior",
        """
int main() {
    char *p = malloc(32);
    free(p + 8);
    return 0;
}
""",
        "invalid-free",
    ),
    (
        "clean-alloc-free",
        """
int main() {
    int *a = malloc(16);
    int *b = malloc(16);
    a[0] = 1;
    b[1] = 2;
    free(a);
    free(b);
    return 0;
}
""",
        None,
    ),
    (
        "clean-free-null",
        """
int main() {
    free(0);
    return 0;
}
""",
        None,
    ),
)


@dataclass
class CorpusTarget:
    """One binary with its expected audit outcome."""

    name: str
    corpus: str          # "cve" | "juliet" | "synthetic" | "clean-spec"
    source: str
    expected_kind: Optional[str]  # None = clean: zero findings expected


@dataclass
class TargetResult:
    target: CorpusTarget
    found_kinds: List[str]
    must_kinds: List[str]
    degraded: bool

    @property
    def detected(self) -> bool:
        return (self.target.expected_kind is not None
                and self.target.expected_kind in self.must_kinds)

    @property
    def clean_ok(self) -> bool:
        return self.target.expected_kind is None and not self.found_kinds

    @property
    def false_positive(self) -> bool:
        return self.target.expected_kind is None and bool(self.found_kinds)


@dataclass
class CorpusScore:
    """Aggregated precision/recall over one corpus slice."""

    seeded: int = 0
    detected: int = 0
    clean: int = 0
    false_positives: int = 0
    results: List[TargetResult] = field(default_factory=list)

    @property
    def recall(self) -> float:
        return self.detected / self.seeded if self.seeded else 1.0

    @property
    def precision(self) -> float:
        reported = self.detected + self.false_positives
        return self.detected / reported if reported else 1.0


def build_corpus(juliet_slice: int = 24) -> List[CorpusTarget]:
    """All targets: seeded errors plus their clean counterparts."""
    targets: List[CorpusTarget] = []
    # CVE kinds mirror each case's seeded bug (reads vs. writes).
    cve_kinds = {
        "CVE-2012-4295": "oob-write",
        "CVE-2007-3476": "oob-write",
        "CVE-2016-1903": "oob-read",
        "CVE-2016-2335": "oob-write",
    }
    for case in CVE_CASES:
        kind = cve_kinds.get(case.cve, "oob-write")
        targets.append(CorpusTarget(
            name=f"{case.cve}[malicious]", corpus="cve",
            source=case.source.replace("arg(0)", str(case.malicious_args[0])),
            expected_kind=kind,
        ))
        targets.append(CorpusTarget(
            name=f"{case.cve}[benign]", corpus="cve",
            source=case.source.replace("arg(0)", str(case.benign_args[0])),
            expected_kind=None,
        ))
    seen: set = set()
    for case in generate_cases(480):
        key = (case.shape, case.victim_size)
        if key in seen:
            continue
        seen.add(key)
        targets.append(CorpusTarget(
            name=f"{case.case_id}[malicious]", corpus="juliet",
            source=case.source.replace("arg(0)", str(case.malicious_args[0])),
            expected_kind="oob-write",
        ))
        targets.append(CorpusTarget(
            name=f"{case.case_id}[benign]", corpus="juliet",
            source=case.source.replace("arg(0)", str(case.benign_args[0])),
            expected_kind=None,
        ))
        if len(seen) >= juliet_slice:
            break
    for name, source, kind in SYNTHETIC_CASES:
        targets.append(CorpusTarget(
            name=name, corpus="synthetic", source=source, expected_kind=kind,
        ))
    for benchmark in SPEC_BENCHMARKS:
        if benchmark.language != "C" or benchmark.paper_real_bugs:
            continue
        targets.append(CorpusTarget(
            name=f"spec-{benchmark.name}", corpus="clean-spec",
            source=benchmark.source, expected_kind=None,
        ))
    return targets


def evaluate(juliet_slice: int = 24,
             verbose: bool = False) -> Dict[str, CorpusScore]:
    """Audit every corpus target; return per-corpus scores."""
    from repro.analysis.audit import audit_dataflow
    from repro.analysis.engine import analyze_control_flow
    from repro.rewriter.cfg import recover_control_flow

    scores: Dict[str, CorpusScore] = {}
    for target in build_corpus(juliet_slice):
        program = compile_source(target.source)
        info = analyze_control_flow(recover_control_flow(program.binary))
        report = audit_dataflow(info, target=target.name)
        result = TargetResult(
            target=target,
            found_kinds=sorted({f.kind for f in report.findings}),
            must_kinds=sorted({f.kind for f in report.must_findings}),
            degraded=report.degraded,
        )
        score = scores.setdefault(target.corpus, CorpusScore())
        score.results.append(result)
        if target.expected_kind is None:
            score.clean += 1
            if result.false_positive:
                score.false_positives += 1
        else:
            score.seeded += 1
            if result.detected:
                score.detected += 1
        if verbose:
            status = ("DETECTED" if result.detected
                      else "clean" if result.clean_ok
                      else "FP" if result.false_positive
                      else "MISSED")
            print(f"  {target.name:<40} {status:<9} {result.found_kinds}")
    return scores


def print_table(scores: Dict[str, CorpusScore]) -> None:
    """The Table-style summary row per corpus."""
    header = (f"{'corpus':<12} {'seeded':>6} {'found':>6} {'clean':>6} "
              f"{'FPs':>4} {'recall':>7} {'precision':>9}")
    print(header)
    print("-" * len(header))
    for name in ("cve", "juliet", "synthetic", "clean-spec"):
        score = scores.get(name)
        if score is None:
            continue
        print(f"{name:<12} {score.seeded:>6} {score.detected:>6} "
              f"{score.clean:>6} {score.false_positives:>4} "
              f"{score.recall:>7.2f} {score.precision:>9.2f}")
    total_seeded = sum(s.seeded for s in scores.values())
    total_found = sum(s.detected for s in scores.values())
    total_clean = sum(s.clean for s in scores.values())
    total_fp = sum(s.false_positives for s in scores.values())
    recall = total_found / total_seeded if total_seeded else 1.0
    reported = total_found + total_fp
    precision = total_found / reported if reported else 1.0
    print("-" * len(header))
    print(f"{'total':<12} {total_seeded:>6} {total_found:>6} "
          f"{total_clean:>6} {total_fp:>4} {recall:>7.2f} {precision:>9.2f}")


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.workloads.auditcorpus",
        description="Score redfat audit against the seeded corpus.",
    )
    parser.add_argument("--juliet", type=int, default=24, metavar="N",
                        help="Juliet shape×size slice to bake (default 24)")
    parser.add_argument("-v", "--verbose", action="store_true",
                        help="print every target's outcome")
    arguments = parser.parse_args(argv)
    scores = evaluate(arguments.juliet, verbose=arguments.verbose)
    print_table(scores)
    failures: List[str] = []
    for corpus, score in scores.items():
        for result in score.results:
            if result.target.expected_kind is not None and not result.detected:
                failures.append(
                    f"missed {result.target.name}: expected "
                    f"{result.target.expected_kind}, found {result.found_kinds}"
                )
            elif result.false_positive:
                failures.append(
                    f"false positive on {result.target.name}: "
                    f"{result.found_kinds}"
                )
    for failure in failures:
        print(f"FAIL: {failure}")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
