"""Benchmark registry types plus the named workload-case registry.

Besides the SPEC benchmark types, this module keeps a flat registry of
*named cases* — every CVE reproduction, the Juliet shape×size slice and
the synthetic free-error programs — so ``redfat hunt --corpus`` and
``redfat bench`` can enumerate and resolve them by name.  The registry
populates lazily on first access (the case modules import the compiler;
eager population would cycle through :mod:`repro.workloads.spec`).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, List, Optional, Tuple

from repro.cc import CompiledProgram, compile_source


@dataclass(frozen=True)
class PaperRow:
    """The paper's Table 1 row for one benchmark (for EXPERIMENTS.md).

    ``factors`` are the published slow-down multipliers in column order:
    (unoptimized, +elim, +batch, +merge, -size, -reads); ``memcheck`` is
    the Memcheck column (None = NR: not run due to known issues).
    """

    coverage: float
    baseline_seconds: int
    factors: Tuple[float, float, float, float, float, float]
    memcheck: Optional[float]


@dataclass
class SpecBenchmark:
    """One SPEC-named kernel."""

    name: str
    language: str  # "C", "C++" or "Fortran"
    source: str
    train_args: List[int]
    ref_args: List[int]
    paper: PaperRow
    #: Number of (array-K)-style sites the paper reports as false
    #: positives when profiling is skipped (§7.1 "False positives").
    paper_fp_sites: int = 0
    #: Number of genuine memory errors the paper reports detecting
    #: (§7.1 "Detected errors").
    paper_real_bugs: int = 0
    #: The paper could not run this benchmark under Memcheck.
    memcheck_nr: bool = False
    notes: str = ""

    def compile(self, pic: bool = False) -> CompiledProgram:
        return _compile_cached(self.source, pic)

    @property
    def expected_output(self) -> Optional[str]:
        """Populated lazily by the harness for self-checking."""
        return None


@lru_cache(maxsize=None)
def _compile_cached(source: str, pic: bool) -> CompiledProgram:
    return compile_source(source, pic=pic)


# -- named workload cases ---------------------------------------------------


@dataclass(frozen=True)
class WorkloadCase:
    """One named, runnable corpus case.

    ``crash_class`` names the memory-error family the case's malicious
    input provokes — ``"heap-overflow"``, ``"double-free"``,
    ``"invalid-free"`` — or None for a clean program.  ``benign_args``
    never trigger the bug; ``malicious_args`` are the known PoC.  Cases
    without ``arg()`` inputs (the synthetic free errors) carry empty
    tuples and misbehave unconditionally.
    """

    name: str
    suite: str  # "cve" | "juliet" | "synthetic"
    source: str
    benign_args: Tuple[int, ...]
    malicious_args: Tuple[int, ...]
    crash_class: Optional[str]
    description: str = ""

    def compile(self) -> CompiledProgram:
        return _compile_cached(self.source, False)


_CASES: Dict[str, WorkloadCase] = {}
_populated = False


def register_case(case: WorkloadCase) -> WorkloadCase:
    """Register a named case; duplicate names are a programming error."""
    if case.name in _CASES:
        raise ValueError(f"workload case {case.name!r} registered twice")
    _CASES[case.name] = case
    return case


def _populate() -> None:
    """First-use population from the case modules (import-cycle safe)."""
    global _populated
    if _populated:
        return
    _populated = True
    from repro.workloads.auditcorpus import SYNTHETIC_CASES
    from repro.workloads.cves import CVE_CASES
    from repro.workloads.juliet import generate_cases

    for case in CVE_CASES:
        register_case(WorkloadCase(
            name=case.cve, suite="cve", source=case.source,
            benign_args=tuple(case.benign_args),
            malicious_args=tuple(case.malicious_args),
            crash_class="heap-overflow",
            description=case.description,
        ))
    seen: set = set()
    for case in generate_cases(480):
        # One case per shape x victim size: the "_00" slice.
        key = (case.shape, case.victim_size)
        if key in seen:
            continue
        seen.add(key)
        register_case(WorkloadCase(
            name=case.case_id, suite="juliet", source=case.source,
            benign_args=tuple(case.benign_args),
            malicious_args=tuple(case.malicious_args),
            crash_class="heap-overflow",
            description=f"CWE-122 {case.shape} over a {case.victim_size}-byte victim",
        ))
    for name, source, kind in SYNTHETIC_CASES:
        register_case(WorkloadCase(
            name=name, suite="synthetic", source=source,
            benign_args=(), malicious_args=(),
            crash_class=kind,
            description=f"synthetic {kind or 'clean'} free-audit program",
        ))


def case_names(suite: Optional[str] = None) -> List[str]:
    """All registered case names, sorted (optionally one suite's)."""
    _populate()
    return sorted(
        name for name, case in _CASES.items()
        if suite is None or case.suite == suite
    )


def get_case(name: str) -> WorkloadCase:
    _populate()
    try:
        return _CASES[name]
    except KeyError:
        raise KeyError(
            f"unknown workload case {name!r}; "
            f"registered: {', '.join(sorted(_CASES))}"
        ) from None


def iter_cases(suite: Optional[str] = None) -> List[WorkloadCase]:
    """All registered cases in name order (optionally one suite's)."""
    return [get_case(name) for name in case_names(suite)]


def case_suites() -> List[str]:
    _populate()
    return sorted({case.suite for case in _CASES.values()})


def anti_idiom_reader(name: str, offset: int = 4) -> str:
    """One Fortran-style reader: iterates a 1-based (shifted-base) array.

    The base pointer ``a - offset`` is out of bounds of the allocation,
    so the indexed access inside is a guaranteed (LowFat) false positive
    — one per generated function.
    """
    return f"""
int {name}(int *a, int n) {{
    int *g = a - {offset};
    int s = 0;
    for (int i = {offset}; i < n + {offset}; i = i + 1) s = s + g[i];
    return s;
}}
"""


def anti_idiom_writer(name: str, offset: int = 4) -> str:
    """One Fortran-style writer (see :func:`anti_idiom_reader`)."""
    return f"""
int {name}(int *a, int n, int v) {{
    int *g = a - {offset};
    for (int i = {offset}; i < n + {offset}; i = i + 1) g[i] = v + i;
    return 0;
}}
"""


def anti_idiom_block(prefix: str, count: int, offset: int = 4) -> Tuple[str, str]:
    """Generate *count* anti-idiom functions plus a driver calling them.

    Returns ``(functions_source, driver_calls_source)``; the driver text
    assumes locals ``a`` (an int array of >= n words) and ``n``, and
    accumulates into ``s``.  Used to plant the exact per-benchmark false
    positive site counts reported in the paper (e.g. 32 for GemsFDTD).
    """
    functions = []
    calls = []
    for index in range(count):
        name = f"{prefix}_{index}"
        if index % 2 == 0:
            functions.append(anti_idiom_reader(name, offset))
            calls.append(f"s = s + {name}(a, n);")
        else:
            functions.append(anti_idiom_writer(name, offset))
            calls.append(f"{name}(a, n, {index});")
    return "\n".join(functions), "\n            ".join(calls)
