"""Benchmark registry types."""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import List, Optional, Tuple

from repro.cc import CompiledProgram, compile_source


@dataclass(frozen=True)
class PaperRow:
    """The paper's Table 1 row for one benchmark (for EXPERIMENTS.md).

    ``factors`` are the published slow-down multipliers in column order:
    (unoptimized, +elim, +batch, +merge, -size, -reads); ``memcheck`` is
    the Memcheck column (None = NR: not run due to known issues).
    """

    coverage: float
    baseline_seconds: int
    factors: Tuple[float, float, float, float, float, float]
    memcheck: Optional[float]


@dataclass
class SpecBenchmark:
    """One SPEC-named kernel."""

    name: str
    language: str  # "C", "C++" or "Fortran"
    source: str
    train_args: List[int]
    ref_args: List[int]
    paper: PaperRow
    #: Number of (array-K)-style sites the paper reports as false
    #: positives when profiling is skipped (§7.1 "False positives").
    paper_fp_sites: int = 0
    #: Number of genuine memory errors the paper reports detecting
    #: (§7.1 "Detected errors").
    paper_real_bugs: int = 0
    #: The paper could not run this benchmark under Memcheck.
    memcheck_nr: bool = False
    notes: str = ""

    def compile(self, pic: bool = False) -> CompiledProgram:
        return _compile_cached(self.source, pic)

    @property
    def expected_output(self) -> Optional[str]:
        """Populated lazily by the harness for self-checking."""
        return None


@lru_cache(maxsize=None)
def _compile_cached(source: str, pic: bool) -> CompiledProgram:
    return compile_source(source, pic=pic)


def anti_idiom_reader(name: str, offset: int = 4) -> str:
    """One Fortran-style reader: iterates a 1-based (shifted-base) array.

    The base pointer ``a - offset`` is out of bounds of the allocation,
    so the indexed access inside is a guaranteed (LowFat) false positive
    — one per generated function.
    """
    return f"""
int {name}(int *a, int n) {{
    int *g = a - {offset};
    int s = 0;
    for (int i = {offset}; i < n + {offset}; i = i + 1) s = s + g[i];
    return s;
}}
"""


def anti_idiom_writer(name: str, offset: int = 4) -> str:
    """One Fortran-style writer (see :func:`anti_idiom_reader`)."""
    return f"""
int {name}(int *a, int n, int v) {{
    int *g = a - {offset};
    for (int i = {offset}; i < n + {offset}; i = i + 1) g[i] = v + i;
    return 0;
}}
"""


def anti_idiom_block(prefix: str, count: int, offset: int = 4) -> Tuple[str, str]:
    """Generate *count* anti-idiom functions plus a driver calling them.

    Returns ``(functions_source, driver_calls_source)``; the driver text
    assumes locals ``a`` (an int array of >= n words) and ``n``, and
    accumulates into ``s``.  Used to plant the exact per-benchmark false
    positive site counts reported in the paper (e.g. 32 for GemsFDTD).
    """
    functions = []
    calls = []
    for index in range(count):
        name = f"{prefix}_{index}"
        if index % 2 == 0:
            functions.append(anti_idiom_reader(name, offset))
            calls.append(f"s = s + {name}(a, n);")
        else:
            functions.append(anti_idiom_writer(name, offset))
            calls.append(f"{name}(a, n, {index});")
    return "\n".join(functions), "\n            ".join(calls)
