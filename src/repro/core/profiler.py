"""Profile-based false-positive mitigation (paper §5, Fig. 5).

Phase 1 instruments every candidate group with a runtime callback instead
of inline checks.  Each execution of a profiled site evaluates the full
(LowFat) predicate precisely against the live register and heap state,
and records pass/fail per site.  Sites that executed and never failed
form the allow-list; phase 2 re-instruments the original binary with the
full check on allow-listed sites and (Redzone)-only elsewhere.

The profile hypothesis (§5): *each memory operation is always a false
positive or never a false positive* — e.g. a Fortran-style ``array - K``
base pointer fails the check on every execution, while idiomatic accesses
never do.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.errors import VMFault
from repro.binfmt.binary import Binary
from repro.layout import REDZONE_SIZE, lowfat_base, lowfat_size
from repro.runtime import registry
from repro.runtime.redfat import RedFatRuntime
from repro.vm.loader import run_binary
from repro.core.allowlist import AllowList
from repro.core.analysis import CheckSite
from repro.core.options import RedFatOptions
from repro.core.redfat_tool import HardenResult, RedFat

#: An execution of the profile binary: receives (binary, runtime) and runs
#: it against one test input.
Execution = Callable[[Binary, RedFatRuntime], None]


def _default_execution(binary: Binary, runtime: RedFatRuntime) -> None:
    run_binary(binary, runtime)


@dataclass
class ProfileReport:
    """Outcome of the profiling phase."""

    executions: Dict[int, int] = field(default_factory=lambda: defaultdict(int))
    failures: Dict[int, int] = field(default_factory=lambda: defaultdict(int))
    eligible_sites: List[int] = field(default_factory=list)

    @property
    def allowlist(self) -> AllowList:
        """Sites observed to always pass the (LowFat) check."""
        return AllowList(
            site
            for site in self.eligible_sites
            if self.executions.get(site, 0) > 0 and self.failures.get(site, 0) == 0
        )

    def observed_false_positive_sites(self) -> List[int]:
        """Sites that failed at least once during profiling."""
        return sorted(site for site, count in self.failures.items() if count)


class Profiler:
    """Drives the two-phase workflow of Fig. 5."""

    def __init__(
        self,
        options: Optional[RedFatOptions] = None,
        telemetry=None,
        cache=None,
    ) -> None:
        """*cache* is an optional farm artifact cache (anything with the
        ``get_or_compute(binary, options, compute)`` protocol of
        :class:`repro.farm.cache.ArtifactCache`, duck-typed so this core
        module never imports the farm): the profile-mode instrumentation
        is memoized there, letting the bench harness build it once per
        benchmark and share it with the coverage phase."""
        self.options = options or RedFatOptions()
        self.telemetry = telemetry
        self.cache = cache

    # -- phase 1 -------------------------------------------------------------

    def profile(
        self,
        binary: Binary,
        executions: Optional[Sequence[Execution]] = None,
    ) -> ProfileReport:
        """Run the profile binary over the test suite; returns the report."""
        profile_options = self.options.with_(profile_mode=True)
        profile_tool = RedFat(profile_options, telemetry=self.telemetry)
        if self.cache is not None:
            harden, _hit = self.cache.get_or_compute(
                binary, profile_options,
                lambda: profile_tool.instrument(binary),
            )
        else:
            harden = profile_tool.instrument(binary)
        report = ProfileReport(
            eligible_sites=[
                site.address
                for sites in harden.site_table.values()
                for site in sites
                if site.lowfat_eligible
            ]
        )

        def callback(cpu, instruction) -> None:
            head = harden.rewrite.tag_map.get(instruction.address)
            for site in harden.site_table.get(head, ()):
                if not site.lowfat_eligible:
                    continue
                report.executions[site.address] += 1
                if not _lowfat_check_passes(cpu, site):
                    report.failures[site.address] += 1

        for execute in executions or [_default_execution]:
            # Profiling always observes through libredfat (the profile
            # binary's PROFILE hooks live in its trampolines), so the
            # registry spec is fixed here rather than caller-selected.
            runtime = registry.create("redfat", mode="log")
            runtime.profile_callback = callback
            execute(harden.binary, runtime)
        return report

    # -- phase 2 -----------------------------------------------------------------

    def harden(self, binary: Binary, report: ProfileReport) -> HardenResult:
        """Produce the production binary using the profiled allow-list."""
        production = RedFat(
            self.options.with_(allowlist=report.allowlist),
            telemetry=self.telemetry,
        )
        return production.instrument(binary)

    def run_workflow(
        self,
        binary: Binary,
        executions: Optional[Sequence[Execution]] = None,
    ) -> "tuple[HardenResult, ProfileReport]":
        """Convenience: profile then harden, as ``redfat`` does end-to-end."""
        report = self.profile(binary, executions)
        return self.harden(binary, report), report


def _lowfat_check_passes(cpu, site: CheckSite) -> bool:
    """Precisely evaluate the production (LowFat) check for one access.

    Mirrors Fig. 4 with ``ptr`` taken from the operand's base register.
    A non-fat pointer passes trivially (the production check would fall
    back to redzone-only protection, which both instrumentations share).
    """
    operand = site.mem
    pointer = cpu.regs[operand.base]
    base = lowfat_base(pointer)
    if base == 0:
        return True
    lower = operand.address(lambda register: cpu.regs[register])
    try:
        size = cpu.memory.read_int(base, 8)
    except VMFault:
        return False  # garbage fat-looking pointer: the check would crash
    if size == 0 or size > lowfat_size(base) - REDZONE_SIZE:
        return False
    if lower < base + REDZONE_SIZE:
        return False
    if lower + site.width > base + REDZONE_SIZE + size:
        return False
    return True
