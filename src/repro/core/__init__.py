"""RedFat core: the paper's primary contribution.

Pipeline (mirrors §3-§6 of the paper)::

    binary --(analysis: candidates + check elimination)-->
           --(batching: one trampoline per group)-->
           --(merging: one bounds check per operand shape)-->
           --(checkgen: Fig. 4 as real ISA code)-->
           --(rewriter: trampolines)-->  hardened binary

plus the two-phase profile workflow of §5 (``profiler``/``allowlist``)
that decides which sites receive the full (Redzone)+(LowFat) check.
"""

from repro.core.options import RedFatOptions
from repro.core.allowlist import AllowList
from repro.core.analysis import CheckSite, find_candidate_sites, AnalysisStats
from repro.core.batching import CheckGroup, build_groups
from repro.core.merging import AccessRange, merge_group
from repro.core.redfat_tool import HardenResult, RedFat
from repro.core.profiler import ProfileReport, Profiler

__all__ = [
    "RedFatOptions",
    "AllowList",
    "CheckSite",
    "AnalysisStats",
    "find_candidate_sites",
    "CheckGroup",
    "build_groups",
    "AccessRange",
    "merge_group",
    "RedFat",
    "HardenResult",
    "Profiler",
    "ProfileReport",
]
