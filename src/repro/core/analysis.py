"""Candidate discovery and check elimination (paper §6).

A *candidate site* is an instruction with an explicit memory operand that
the policy wants checked.  Check elimination then removes operands that
provably cannot reach the low-fat heap:

1. operands with no index register, **and**
2. no base register (an absolute, ±2 GB displacement stays inside region
   0), or a base register that is the stack or instruction pointer (the
   stack and code live more than 2 GB away from any low-fat region under
   this layout).

Operands with an index register always survive elimination: the index is
unbounded and could carry an access anywhere (exactly the attacker-
controlled non-incremental case).

On top of the syntactic rule, two flow-sensitive elimination passes run
when a :class:`~repro.analysis.engine.DataflowInfo` bundle is supplied:
provenance-based elimination (``options.flow_elim``) drops operands whose
base register provably derives from a non-heap anchor, and
dominated-redundancy removal (``options.dominated_elim``) drops checks an
identical dominating check already performs.  Both count separately from
the syntactic rule (``eliminated_provenance`` / ``eliminated_dominated``)
so Table 1 can attribute the wins.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.isa.instructions import Instruction
from repro.isa.operands import Mem
from repro.isa.registers import RSP, Register
from repro.rewriter.cfg import ControlFlowInfo
from repro.core.options import RedFatOptions


@dataclass
class CheckSite:
    """One instrumentable memory access."""

    instruction: Instruction
    mem: Mem
    is_read: bool
    is_write: bool
    width: int

    @property
    def address(self) -> int:
        return self.instruction.address

    @property
    def lowfat_eligible(self) -> bool:
        """The (LowFat) component needs unambiguous pointer arithmetic:
        ``ptr = base`` and ``i = disp + index*scale`` (paper §3).  An
        operand with no base register has no pointer to check."""
        return self.mem.base is not None and self.mem.base is not Register.RIP

    def operand_registers(self) -> frozenset:
        registers = set()
        if self.mem.base is not None and self.mem.base is not Register.RIP:
            registers.add(self.mem.base)
        if self.mem.index is not None:
            registers.add(self.mem.index)
        return frozenset(registers)


@dataclass
class AnalysisStats:
    """Bookkeeping reported by the tool (and shown by the benches)."""

    memory_operands: int = 0
    skipped_reads: int = 0
    eliminated: int = 0
    #: Checks dropped by the flow-sensitive provenance analysis — sites
    #: the syntactic rule keeps but whose base register provably derives
    #: from a non-heap anchor.
    eliminated_provenance: int = 0
    #: Checks dropped because an identical dominating check (no
    #: intervening clobber/call) already performs them.
    eliminated_dominated: int = 0
    #: Checks dropped by the interprocedural value-range analysis —
    #: constant-offset accesses provably inside a known-size,
    #: provably-unfreed allocation.
    eliminated_range: int = 0
    candidates: int = 0
    #: Sites that fell from lowfat+redzone to redzone-only because full
    #: check generation failed (the graceful-degradation ladder).
    degraded_sites: int = 0
    #: Sites left entirely uninstrumented after the ladder bottomed out
    #: (generation and encoding both failed under ``keep_going``).
    quarantined_sites: int = 0
    #: Save/restore pairs (registers + flags) the global liveness analysis
    #: avoided beyond what the block-local rule would have saved.
    liveness_spills_avoided: int = 0
    #: 1 when the dataflow analyses failed and the pipeline reverted to
    #: the syntactic/block-local rules for this run.
    analysis_fallbacks: int = 0
    #: 1 when only the interprocedural layer (call graph / summaries /
    #: ranges) failed and the run kept its intra-procedural facts.
    interproc_fallbacks: int = 0

    def as_dict(self) -> "dict[str, int]":
        """The common stats protocol (telemetry export / ``--metrics``)."""
        return {
            "memory_operands": self.memory_operands,
            "skipped_reads": self.skipped_reads,
            "eliminated": self.eliminated,
            "eliminated_provenance": self.eliminated_provenance,
            "eliminated_dominated": self.eliminated_dominated,
            "eliminated_range": self.eliminated_range,
            "candidates": self.candidates,
            "degraded_sites": self.degraded_sites,
            "quarantined_sites": self.quarantined_sites,
            "liveness_spills_avoided": self.liveness_spills_avoided,
            "analysis_fallbacks": self.analysis_fallbacks,
            "interproc_fallbacks": self.interproc_fallbacks,
        }

    def elimination_reasons(self) -> "dict[str, int]":
        """Elimination counts keyed by the rule that justified them."""
        return {
            "syntactic": self.eliminated,
            "provenance": self.eliminated_provenance,
            "dominated": self.eliminated_dominated,
            "range": self.eliminated_range,
        }


def can_eliminate(mem: Mem) -> bool:
    """Check elimination rule: the operand can never reach heap memory."""
    if mem.index is not None:
        return False
    if mem.base is None:
        return True  # absolute disp32: always inside non-fat region 0
    return mem.base in (RSP, Register.RIP)


def _provenance_eliminable(dataflow, instruction: Instruction, mem: Mem) -> bool:
    """Does the provenance analysis justify dropping this site's check?"""
    from repro.analysis import provenance

    facts = dataflow.facts_before(instruction.address)
    if facts is None:
        return False
    return provenance.operand_provenance(facts, mem) is not None


def _range_eliminable(dataflow, instruction: Instruction, mem: Mem,
                      width: int) -> bool:
    """Does the interprocedural range analysis prove the access in
    bounds of a known-size, provably-unfreed allocation?"""
    from repro.analysis import ranges

    state = dataflow.range_before(instruction.address)
    if state is None:
        return False
    verdict = ranges.classify_access(state, mem, width)
    return verdict is not None and verdict.kind == "in"


def find_candidate_sites(
    control_flow: ControlFlowInfo,
    options: RedFatOptions,
    dataflow=None,
) -> "tuple[List[CheckSite], AnalysisStats]":
    """Scan decoded text for instrumentable accesses under *options*.

    *dataflow* is an optional :class:`~repro.analysis.engine.DataflowInfo`
    enabling the flow-sensitive passes; without it (or with a fallback
    bundle) only the syntactic rule applies.
    """
    sites: List[CheckSite] = []
    stats = AnalysisStats()
    if dataflow is not None and dataflow.fallback:
        stats.analysis_fallbacks = 1
    if dataflow is not None and getattr(dataflow, "interproc_fallback", False):
        stats.interproc_fallbacks = 1
    use_flow = (
        options.flow_elim and dataflow is not None and not dataflow.fallback
    )
    use_range = (
        options.interproc_elim
        and dataflow is not None
        and not dataflow.fallback
        and getattr(dataflow, "range_facts", None) is not None
    )
    for instruction in control_flow.instructions:
        access = instruction.memory_access()
        if access is None:
            continue
        mem, is_read, is_write, width = access
        stats.memory_operands += 1
        if not options.check_reads and not is_write:
            stats.skipped_reads += 1
            continue
        if options.elim and can_eliminate(mem):
            stats.eliminated += 1
            continue
        if use_flow and _provenance_eliminable(dataflow, instruction, mem):
            stats.eliminated_provenance += 1
            continue
        if use_range and _range_eliminable(dataflow, instruction, mem, width):
            stats.eliminated_range += 1
            continue
        sites.append(CheckSite(instruction, mem, is_read, is_write, width))
    if options.dominated_elim and dataflow is not None:
        redundant = dataflow.dominated_redundant(sites)
        if redundant:
            sites = [site for site in sites if site.address not in redundant]
            stats.eliminated_dominated = len(redundant)
    stats.candidates = len(sites)
    return sites, stats
