"""Candidate discovery and check elimination (paper §6).

A *candidate site* is an instruction with an explicit memory operand that
the policy wants checked.  Check elimination then removes operands that
provably cannot reach the low-fat heap:

1. operands with no index register, **and**
2. no base register (an absolute, ±2 GB displacement stays inside region
   0), or a base register that is the stack or instruction pointer (the
   stack and code live more than 2 GB away from any low-fat region under
   this layout).

Operands with an index register always survive elimination: the index is
unbounded and could carry an access anywhere (exactly the attacker-
controlled non-incremental case).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.isa.instructions import Instruction
from repro.isa.operands import Mem
from repro.isa.registers import RSP, Register
from repro.rewriter.cfg import ControlFlowInfo
from repro.core.options import RedFatOptions


@dataclass
class CheckSite:
    """One instrumentable memory access."""

    instruction: Instruction
    mem: Mem
    is_read: bool
    is_write: bool
    width: int

    @property
    def address(self) -> int:
        return self.instruction.address

    @property
    def lowfat_eligible(self) -> bool:
        """The (LowFat) component needs unambiguous pointer arithmetic:
        ``ptr = base`` and ``i = disp + index*scale`` (paper §3).  An
        operand with no base register has no pointer to check."""
        return self.mem.base is not None and self.mem.base is not Register.RIP

    def operand_registers(self) -> frozenset:
        registers = set()
        if self.mem.base is not None and self.mem.base is not Register.RIP:
            registers.add(self.mem.base)
        if self.mem.index is not None:
            registers.add(self.mem.index)
        return frozenset(registers)


@dataclass
class AnalysisStats:
    """Bookkeeping reported by the tool (and shown by the benches)."""

    memory_operands: int = 0
    skipped_reads: int = 0
    eliminated: int = 0
    candidates: int = 0
    #: Sites that fell from lowfat+redzone to redzone-only because full
    #: check generation failed (the graceful-degradation ladder).
    degraded_sites: int = 0
    #: Sites left entirely uninstrumented after the ladder bottomed out
    #: (generation and encoding both failed under ``keep_going``).
    quarantined_sites: int = 0

    def as_dict(self) -> "dict[str, int]":
        """The common stats protocol (telemetry export / ``--metrics``)."""
        return {
            "memory_operands": self.memory_operands,
            "skipped_reads": self.skipped_reads,
            "eliminated": self.eliminated,
            "candidates": self.candidates,
            "degraded_sites": self.degraded_sites,
            "quarantined_sites": self.quarantined_sites,
        }


def can_eliminate(mem: Mem) -> bool:
    """Check elimination rule: the operand can never reach heap memory."""
    if mem.index is not None:
        return False
    if mem.base is None:
        return True  # absolute disp32: always inside non-fat region 0
    return mem.base in (RSP, Register.RIP)


def find_candidate_sites(
    control_flow: ControlFlowInfo,
    options: RedFatOptions,
) -> "tuple[List[CheckSite], AnalysisStats]":
    """Scan decoded text for instrumentable accesses under *options*."""
    sites: List[CheckSite] = []
    stats = AnalysisStats()
    for instruction in control_flow.instructions:
        access = instruction.memory_access()
        if access is None:
            continue
        mem, is_read, is_write, width = access
        stats.memory_operands += 1
        if not options.check_reads and not is_write:
            stats.skipped_reads += 1
            continue
        if options.elim and can_eliminate(mem):
            stats.eliminated += 1
            continue
        sites.append(CheckSite(instruction, mem, is_read, is_write, width))
    stats.candidates = len(sites)
    return sites, stats
