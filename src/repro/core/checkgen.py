"""Check code generation: paper Fig. 4 lowered to real ISA instructions.

For every :class:`~repro.core.merging.AccessRange` the generator emits:

1. ``LB`` computation from the (possibly merged) memory operand;
2. the low-fat ``base(ptr)`` computation — region index via ``shr 35``,
   class size via one load from the embedded SIZES table, base via
   ``ptr - ptr % size`` — with the (Redzone) fallback through ``LB`` when
   ``ptr`` is non-fat (Fig. 4 step 2);
3. the metadata load from the redzone (``SIZE``, with ``SIZE == 0`` ⇔
   Free under the merged state encoding);
4. optional metadata hardening (``SIZE`` vs. the immutable class size);
5. the bounds checks — either the three-branch form of Fig. 4, or, under
   ``merge``, the single-branch u32-underflow form of §4.2 ("Mergeable
   code").

Trampoline entry/exit cost is borne here too: flags and scratch registers
are saved/restored unless the register-usage analysis proves them dead
(``specialize_registers``).  Position-independent binaries address the
SIZES table rip-relatively; position-dependent ones use an absolute
operand — the generated binary stays as position-(in)dependent as its
input.

Every ``trap`` is tagged with the representative original site address so
the runtime can attribute errors precisely even through batching/merging.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.isa.assembler import Item
from repro.isa.instructions import Instruction
from repro.isa.opcodes import Opcode
from repro.isa.operands import Imm, Label, Mem, Reg
from repro.isa.registers import RSP, Register
from repro.layout import MAX_REGIONS, REDZONE_SIZE, REGION_SHIFT, SIZES_TABLE_ADDR
from repro.vm.runtime_iface import TrapCode
from repro.core.merging import AccessRange
from repro.core.options import RedFatOptions

_REGION_MASK = MAX_REGIONS - 1


@dataclass
class CheckContext:
    """Per-group facts the generator needs."""

    options: RedFatOptions
    scratch: Sequence[Register]  # exactly four registers
    save_registers: Sequence[Register]  # subset of scratch needing save
    save_flags: bool
    pic: bool = False
    sizes_table: int = SIZES_TABLE_ADDR

    @property
    def push_count(self) -> int:
        return len(self.save_registers) + (1 if self.save_flags else 0)


def _ins(opcode: Opcode, *operands, size: int = 8, **kw) -> Instruction:
    return Instruction(opcode, tuple(operands), size=size, **kw)


class CheckGenerator:
    """Generates prologue + per-range checks + epilogue for one group."""

    def __init__(self, context: CheckContext) -> None:
        self.context = context
        if len(context.scratch) != 4:
            raise ValueError("check generation needs exactly 4 scratch registers")

    # -- public ------------------------------------------------------------

    def generate(self, ranges: List[AccessRange], group_head: int) -> List[Item]:
        items: List[Item] = []
        items += self._prologue()
        for index, access_range in enumerate(ranges):
            items += self._range_check(access_range, f"c{group_head:x}_{index}")
        items += self._epilogue()
        return items

    # -- prologue / epilogue ---------------------------------------------------

    def _prologue(self) -> List[Item]:
        items: List[Item] = []
        if self.context.save_flags:
            items.append(_ins(Opcode.PUSHF))
        for register in self.context.save_registers:
            items.append(_ins(Opcode.PUSH, Reg(register)))
        return items

    def _epilogue(self) -> List[Item]:
        items: List[Item] = []
        for register in reversed(self.context.save_registers):
            items.append(_ins(Opcode.POP, Reg(register)))
        if self.context.save_flags:
            items.append(_ins(Opcode.POPF))
        return items

    # -- helpers -----------------------------------------------------------------

    def _adjusted_operand(self, access_range: AccessRange) -> Mem:
        """The range's operand, with rsp displacement compensated.

        The prologue's pushes move the stack pointer down by
        ``8 * push_count``; an rsp-based operand evaluated inside the
        trampoline must add that delta back.
        """
        disp = access_range.disp
        if access_range.base is RSP:
            disp += 8 * self.context.push_count
        return Mem(disp, access_range.base, access_range.index, access_range.scale)

    def _pointer_items(self, destination: Register, base: Register) -> List[Item]:
        """Materialise the original value of *base* into *destination*."""
        if base is RSP:
            return [_ins(Opcode.LEA, Reg(destination),
                         Mem(8 * self.context.push_count, RSP))]
        return [_ins(Opcode.MOV, Reg(destination), Reg(base))]

    def _table_lookup(self, value_reg: Register, table_reg: Register) -> List[Item]:
        """``value_reg = SIZES[value_reg >> 35 & mask]`` (clobbers table_reg on PIC)."""
        items = [
            _ins(Opcode.SHR, Reg(value_reg), Imm(REGION_SHIFT)),
            _ins(Opcode.AND, Reg(value_reg), Imm(_REGION_MASK)),
        ]
        if self.context.pic:
            items.append(
                _ins(Opcode.LEA, Reg(table_reg), Mem(0, Register.RIP),
                     abs_target=self.context.sizes_table)
            )
            items.append(
                _ins(Opcode.MOV, Reg(value_reg), Mem(0, table_reg, value_reg, 8))
            )
        else:
            items.append(
                _ins(Opcode.MOV, Reg(value_reg),
                     Mem(self.context.sizes_table, None, value_reg, 8))
            )
        return items

    def _trap(self, code: TrapCode, site: int, done: str) -> List[Item]:
        """A tagged trap that (in log mode) skips the rest of the check."""
        return [
            _ins(Opcode.TRAP, Imm(int(code)), tag=site),
            _ins(Opcode.JMP, Label(done)),
        ]

    # -- the check itself ------------------------------------------------------------

    def _range_check(self, access_range: AccessRange, prefix: str) -> List[Item]:
        t0, t1, t2, t3 = self.context.scratch
        options = self.context.options
        site = access_range.representative_site
        done = f"{prefix}_done"
        use_lowfat = access_range.use_lowfat and access_range.base is not None

        items: List[Item] = []
        # STEP 1: LB into t0.
        items.append(_ins(Opcode.LEA, Reg(t0), self._adjusted_operand(access_range)))

        # STEP 2: candidate pointer into t1, class size into t2.
        if use_lowfat:
            items += self._pointer_items(t1, access_range.base)
        else:
            items.append(_ins(Opcode.MOV, Reg(t1), Reg(t0)))
        items.append(_ins(Opcode.MOV, Reg(t2), Reg(t1)))
        items += self._table_lookup(t2, t3)
        items.append(_ins(Opcode.TEST, Reg(t2), Reg(t2)))
        if use_lowfat:
            fat = f"{prefix}_fat"
            items.append(_ins(Opcode.JNE, Label(fat)))
            # (Redzone) fallback: the pointer is non-fat; derive the base
            # from the accessed address instead (Fig. 4 lines 13-14).
            items.append(_ins(Opcode.MOV, Reg(t1), Reg(t0)))
            items.append(_ins(Opcode.MOV, Reg(t2), Reg(t1)))
            items += self._table_lookup(t2, t3)
            items.append(_ins(Opcode.TEST, Reg(t2), Reg(t2)))
            items.append(_ins(Opcode.JE, Label(done)))
            items.append(Label(fat))
        else:
            items.append(_ins(Opcode.JE, Label(done)))

        # t1 = BASE = ptr - ptr % class_size.
        items.append(_ins(Opcode.MOV, Reg(t3), Reg(t1)))
        items.append(_ins(Opcode.MOD, Reg(t3), Reg(t2)))
        items.append(_ins(Opcode.SUB, Reg(t1), Reg(t3)))

        # STEP 3: metadata SIZE into t3 (SIZE == 0 means Free).
        items.append(_ins(Opcode.MOV, Reg(t3), Mem(0, t1)))

        # STEP 4a: metadata hardening (Fig. 4 lines 23-24).
        if options.size_hardening:
            size_ok = f"{prefix}_szok"
            items.append(_ins(Opcode.SUB, Reg(t2), Imm(REDZONE_SIZE)))
            items.append(_ins(Opcode.CMP, Reg(t3), Reg(t2)))
            items.append(_ins(Opcode.JBE, Label(size_ok)))
            items += self._trap(TrapCode.METADATA, site, done)
            items.append(Label(size_ok))

        if options.merge:
            # STEP 4b (merged): single-branch bounds via u32 underflow.
            items.append(_ins(Opcode.ADD, Reg(t1), Imm(REDZONE_SIZE)))
            items.append(_ins(Opcode.SUB, Reg(t0), Reg(t1)))
            items.append(_ins(Opcode.MOV, Reg(t0), Reg(t0), size=4))
            items.append(_ins(Opcode.ADD, Reg(t0), Imm(access_range.length)))
            items.append(_ins(Opcode.CMP, Reg(t0), Reg(t3)))
            items.append(_ins(Opcode.JBE, Label(done)))
            items += self._trap(TrapCode.OOB_UPPER, site, done)
        else:
            # STEP 4b (separate branches, as written in Fig. 4).
            live = f"{prefix}_live"
            items.append(_ins(Opcode.TEST, Reg(t3), Reg(t3)))
            items.append(_ins(Opcode.JNE, Label(live)))
            items += self._trap(TrapCode.USE_AFTER_FREE, site, done)
            items.append(Label(live))
            lb_ok = f"{prefix}_lbok"
            items.append(_ins(Opcode.ADD, Reg(t1), Imm(REDZONE_SIZE)))
            items.append(_ins(Opcode.CMP, Reg(t0), Reg(t1)))
            items.append(_ins(Opcode.JAE, Label(lb_ok)))
            items += self._trap(TrapCode.OOB_LOWER, site, done)
            items.append(Label(lb_ok))
            items.append(_ins(Opcode.ADD, Reg(t1), Reg(t3)))
            items.append(_ins(Opcode.ADD, Reg(t0), Imm(access_range.length)))
            items.append(_ins(Opcode.CMP, Reg(t0), Reg(t1)))
            items.append(_ins(Opcode.JBE, Label(done)))
            items += self._trap(TrapCode.OOB_UPPER, site, done)
        items.append(Label(done))
        return items
