"""Check batching (paper §6, Fig. 6).

Consecutive checked accesses inside one basic block are grouped so that a
single trampoline — invoked once, at the group head — checks all of them.
A site may join a group only if its address computation can be *reordered*
to the group head: none of the instructions between the head and the site
write any register its memory operand reads.  Because the conservative CFG
splits blocks at every possible jump target and at calls/runtime calls,
group members always execute together and the heap cannot change state
between the hoisted check and the access.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set

from repro.isa.registers import Register
from repro.rewriter.cfg import ControlFlowInfo
from repro.core.analysis import CheckSite
from repro.core.options import RedFatOptions

#: The check generator needs this many scratch registers...
SCRATCH_COUNT = 4
#: ...so a group's operands may use at most 16 - 1 (rsp) - SCRATCH_COUNT.
MAX_GROUP_OPERAND_REGS = 16 - 1 - SCRATCH_COUNT


@dataclass
class CheckGroup:
    """Sites whose checks share one trampoline at ``head``."""

    sites: List[CheckSite] = field(default_factory=list)

    @property
    def head(self) -> CheckSite:
        return self.sites[0]

    @property
    def head_address(self) -> int:
        return self.sites[0].address

    def operand_registers(self) -> frozenset:
        registers: Set[Register] = set()
        for site in self.sites:
            registers |= site.operand_registers()
        return frozenset(registers)

    def __len__(self) -> int:
        return len(self.sites)


def build_groups(
    control_flow: ControlFlowInfo,
    sites: List[CheckSite],
    options: RedFatOptions,
) -> List[CheckGroup]:
    """Partition *sites* into trampoline groups.

    With batching disabled every site is its own group (Fig. 6(b)); with
    batching enabled, maximal reorderable runs within each basic block
    share a group (Fig. 6(c)).
    """
    if not options.batch:
        return [CheckGroup([site]) for site in sites]

    site_by_address: Dict[int, CheckSite] = {site.address: site for site in sites}
    groups: List[CheckGroup] = []
    for block in control_flow.blocks:
        current: CheckGroup = None
        written: Set[Register] = set()
        for instruction in block.instructions:
            site = site_by_address.get(instruction.address)
            if site is not None:
                operand_regs = site.operand_registers()
                joinable = (
                    current is not None
                    and not (operand_regs & written)
                    and len(current.operand_registers() | operand_regs)
                    <= MAX_GROUP_OPERAND_REGS
                )
                if joinable:
                    current.sites.append(site)
                else:
                    current = CheckGroup([site])
                    groups.append(current)
                    written = set()
            written |= instruction.regs_written()
        # Groups never span blocks; `current` dies with the block.
    return groups
