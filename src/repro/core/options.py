"""Instrumentation options — the knobs evaluated in Table 1."""

from __future__ import annotations

import hashlib
import json
import warnings
from dataclasses import dataclass, fields, replace
from typing import Dict, List, Optional

from repro.core.allowlist import AllowList

#: Version stamp folded into :meth:`RedFatOptions.cache_key`.  Bump it
#: whenever the *meaning* of an existing field changes (a new field with
#: a default changes the key by itself): stale farm-cache artifacts from
#: an older pipeline must never be served for a newer one.
OPTIONS_SCHEMA_VERSION = 1

#: The named preset registry (see :meth:`RedFatOptions.preset`).  Keys
#: are the Table-1 column labels; values are the field overrides applied
#: on top of the defaults.  ``"+merge"`` / ``"fully"`` are the fully
#: optimized configuration under two names (the paper uses both).
PRESETS: Dict[str, Dict[str, object]] = {
    "unoptimized": dict(
        elim=False, batch=False, merge=False, specialize_registers=False,
        flow_elim=False, dominated_elim=False, global_liveness=False,
        interproc_elim=False,
    ),
    "+elim": dict(batch=False, merge=False, specialize_registers=False,
                  global_liveness=False),
    "+batch": dict(merge=False, specialize_registers=False,
                   global_liveness=False),
    "+merge": {},
    "fully": {},
    "-size": dict(size_hardening=False),
    "-reads": dict(size_hardening=False, check_reads=False),
    "profile": dict(profile_mode=True),
}


@dataclass(frozen=True)
class RedFatOptions:
    """Configuration of one instrumentation run.

    The Table 1 columns correspond to::

        unoptimized   RedFatOptions.unoptimized()
        +elim         ... elim=True
        +batch        ... + batch=True
        +merge        ... + merge=True           (= fully optimized)
        -size         ... + size_hardening=False
        -reads        ... + check_reads=False
    """

    #: Enable the low-fat (pointer arithmetic) component; redzone checking
    #: is always on.  When an allow-list is present, only allow-listed
    #: sites get the low-fat component (paper §5).
    lowfat: bool = True

    #: Check elimination: skip operands that provably cannot reach the
    #: low-fat heap (paper §6).
    elim: bool = True

    #: Flow-sensitive check elimination: drop checks whose operand's base
    #: register provably derives from a non-heap anchor (stack/RIP/
    #: absolute) per the pointer-provenance dataflow analysis.  A strict
    #: superset of the syntactic ``elim`` rule; counted separately
    #: (``checks.eliminated_provenance``).
    flow_elim: bool = True

    #: Dominated-redundancy removal: drop a check dominated by an
    #: identical kept check with no intervening operand clobber or call.
    dominated_elim: bool = True

    #: Interprocedural value-range elimination: drop checks on constant-
    #: offset accesses provably inside a known-size, provably-unfreed
    #: allocation (call-graph summaries + range analysis; counted as
    #: ``checks.eliminated_range``).  Degrades to the intra-procedural
    #: facts when the summaries or the range solve diverge.
    interproc_elim: bool = True

    #: Check batching: one trampoline per reorderable group (paper §6).
    batch: bool = True

    #: Check merging: single bounds check for operands differing only in
    #: displacement, and branch-merged UaF/LB/UB checks (paper §4.2, §6).
    merge: bool = True

    #: Metadata (size) hardening: validate the stored SIZE against the
    #: immutable low-fat class size (Fig. 4 lines 23-24).  ``-size``
    #: disables it.
    size_hardening: bool = True

    #: Instrument reads as well as writes. ``-reads`` keeps write-only
    #: protection (sufficient against most exploits, paper §7.1).
    check_reads: bool = True

    #: Profile-phase allow-list; None means every eligible site gets the
    #: low-fat component (the configuration that produces false positives).
    allowlist: Optional[AllowList] = None

    #: Generate the profile-phase binary instead of the production one.
    profile_mode: bool = False

    #: Clobbered-register/flags specialization of trampolines (paper §6,
    #: "additional low-level optimizations").
    specialize_registers: bool = True

    #: Drive specialization with the global (inter-block) liveness
    #: analysis instead of the block-local everything-live-at-boundary
    #: rule.  Only meaningful with ``specialize_registers``; the saves it
    #: adds over the local rule are counted as ``liveness.spills_avoided``.
    global_liveness: bool = True

    #: Keep instrumenting when a site exhausts the protection ladder
    #: (lowfat+redzone -> redzone -> none): quarantine the site and
    #: continue instead of aborting the pipeline.  Off by default so a
    #: silent coverage loss never goes unnoticed; the CLI exposes it as
    #: ``--keep-going``.
    keep_going: bool = False

    # -- presets -----------------------------------------------------------

    @classmethod
    def preset(cls, name: str, **overrides) -> "RedFatOptions":
        """Construct the named configuration from the registry.

        ``name`` is a Table-1 column label (``"unoptimized"``,
        ``"+elim"``, ``"+batch"``, ``"+merge"``/``"fully"``, ``"-size"``,
        ``"-reads"``) or ``"profile"``; *overrides* are applied on top
        (most commonly ``allowlist=...``).
        """
        try:
            fields = PRESETS[name]
        except KeyError:
            raise ValueError(
                f"unknown preset {name!r}; registered: {cls.preset_names()}"
            ) from None
        return replace(cls(**fields), **overrides)

    @classmethod
    def preset_names(cls) -> List[str]:
        return sorted(PRESETS)

    @classmethod
    def production(cls, allowlist: AllowList, **overrides) -> "RedFatOptions":
        """The deployment configuration of Fig. 5, step (2)."""
        return replace(cls(allowlist=allowlist), **overrides)

    # -- deprecated constructor aliases (use :meth:`preset`) ---------------

    @classmethod
    def unoptimized(cls, **overrides) -> "RedFatOptions":
        warnings.warn(
            "RedFatOptions.unoptimized() is deprecated; use "
            "RedFatOptions.preset('unoptimized', ...)",
            DeprecationWarning, stacklevel=2,
        )
        return cls.preset("unoptimized", **overrides)

    @classmethod
    def fully_optimized(cls, **overrides) -> "RedFatOptions":
        warnings.warn(
            "RedFatOptions.fully_optimized() is deprecated; use "
            "RedFatOptions.preset('fully', ...)",
            DeprecationWarning, stacklevel=2,
        )
        return cls.preset("fully", **overrides)

    @classmethod
    def profile(cls, **overrides) -> "RedFatOptions":
        warnings.warn(
            "RedFatOptions.profile() is deprecated; use "
            "RedFatOptions.preset('profile', ...)",
            DeprecationWarning, stacklevel=2,
        )
        return cls.preset("profile", **overrides)

    def with_(self, **overrides) -> "RedFatOptions":
        return replace(self, **overrides)

    # -- canonical serialization (the farm cache-key contract) -------------

    def as_dict(self) -> Dict[str, object]:
        """Canonical, sorted, JSON-ready form of every option field.

        The allow-list collapses to its sorted site addresses (two equal
        lists serialize identically regardless of insertion order); every
        other field is a JSON scalar already.  Iterating the dataclass
        fields means a newly added option automatically participates —
        forgetting it could silently serve stale cache artifacts.
        """
        payload: Dict[str, object] = {}
        for option in fields(self):
            value = getattr(self, option.name)
            if isinstance(value, AllowList):
                value = sorted(value)
            payload[option.name] = value
        return {name: payload[name] for name in sorted(payload)}

    def cache_key(self) -> str:
        """Stable content hash of this configuration.

        Two equal option objects always hash identically; flipping any
        flag (or the allow-list contents, or
        :data:`OPTIONS_SCHEMA_VERSION`) changes the key.  Combined with
        the input binary's hash this keys the farm's artifact cache.
        """
        document = json.dumps(
            {"schema": OPTIONS_SCHEMA_VERSION, "options": self.as_dict()},
            sort_keys=True, separators=(",", ":"),
        )
        return hashlib.sha256(document.encode("utf-8")).hexdigest()

    def lowfat_allowed(self, site_address: int) -> bool:
        """Should *site_address* receive the (LowFat) component?"""
        if not self.lowfat:
            return False
        if self.allowlist is None:
            return True
        return site_address in self.allowlist
