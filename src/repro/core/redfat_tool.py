"""The RedFat tool: binary in, hardened (or profile) binary out."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.analysis import analyze_control_flow
from repro.errors import InstrumentationError
from repro.faults.injector import fault_point
from repro.binfmt.binary import Binary
from repro.binfmt.sections import SEG_READ, Segment
from repro.isa.instructions import Instruction
from repro.isa.opcodes import Opcode
from repro.isa.operands import Imm
from repro.layout import MAX_REGIONS, SIZES_TABLE_ADDR, build_sizes_table
from repro.rewriter.cfg import recover_control_flow
from repro.rewriter.regusage import (
    dead_registers_after,
    flags_dead_after,
    pick_scratch_registers,
)
from repro.rewriter.rewriter import PatchRequest, RewriteResult, Rewriter
from repro.runtime.redfat import RedFatRuntime
from repro.telemetry.hub import Telemetry, coerce
from repro.vm.runtime_iface import Service
from repro.core.analysis import AnalysisStats, CheckSite, find_candidate_sites
from repro.core.batching import SCRATCH_COUNT, build_groups
from repro.core.checkgen import CheckContext, CheckGenerator
from repro.core.merging import merge_group
from repro.core.options import RedFatOptions

#: Segment name for the embedded SIZES table.
SIZES_SEGMENT = ".sizes"

#: Site protection classifications (coverage accounting).
PROT_LOWFAT = "lowfat+redzone"
PROT_REDZONE = "redzone"
PROT_NONE = "none"


def sizes_table_segment() -> Segment:
    """The SIZES table the hardened binary embeds (region -> class size)."""
    table = build_sizes_table(MAX_REGIONS)
    blob = b"".join(entry.to_bytes(8, "little") for entry in table)
    return Segment(SIZES_SEGMENT, SIZES_TABLE_ADDR, blob, SEG_READ)


@dataclass
class HardenResult:
    """Everything produced by one instrumentation run."""

    binary: Binary
    rewrite: RewriteResult
    options: RedFatOptions
    stats: AnalysisStats
    #: site address -> PROT_* classification.
    protection: Dict[int, str]
    #: profile mode only: group head -> the sites it profiles.
    site_table: Dict[int, List[CheckSite]] = field(default_factory=dict)
    groups: int = 0
    #: (head address, reason) for every group left uninstrumented because
    #: the protection ladder bottomed out — check generation and the
    #: redzone-only fallback both failed, or the trampoline would not
    #: encode.  Empty on a healthy run.
    quarantine: List[Tuple[int, str]] = field(default_factory=list)

    def create_runtime(
        self,
        mode: str = "abort",
        randomize: bool = False,
        seed: int = 1,
        telemetry: Optional[Telemetry] = None,
        runtime: Optional[str] = None,
        preload: Optional[str] = None,
    ):
        """A runtime wired for precise error attribution on this binary.

        *runtime* is a registry spec (``"redfat"`` by default, or any
        registered backend such as ``"s2malloc:seed=7"`` — see
        :mod:`repro.runtime.registry`); *mode* is ``"abort"``
        (hardening) or ``"log"`` (bug finding); *randomize*/*seed*
        control free-list randomization of the low-fat allocator (the
        seed also feeds the randomized backends); *telemetry* threads a
        hub through allocator and error-report counters.

        ``preload=`` is the deprecated pre-registry spelling of
        ``runtime=`` and emits a :class:`DeprecationWarning`.
        """
        import warnings

        from repro.runtime import registry

        if preload is not None:
            warnings.warn(
                "create_runtime(preload=...) is deprecated; "
                "pass runtime=<registry spec> instead",
                DeprecationWarning, stacklevel=2,
            )
            if runtime is None:
                runtime = preload
        spec = registry.parse_spec(runtime if runtime is not None else "redfat")
        options = {"mode": mode, "seed": seed, "telemetry": telemetry}
        if registry.resolve(spec.name).name == "redfat":
            options["randomize"] = randomize
        environment = registry.create(spec, **options)
        if hasattr(environment, "site_resolver"):
            environment.site_resolver = (
                lambda rip: self.rewrite.resolve_site(rip) or rip
            )
        return environment

    def as_dict(self) -> Dict[str, object]:
        """The common stats protocol (telemetry export / ``--metrics``)."""
        return {
            "stats": self.stats.as_dict(),
            "rewrite": self.rewrite.as_dict(),
            "groups": self.groups,
            "sites": {
                "lowfat": len(self.protected_sites(PROT_LOWFAT)),
                "redzone": len(self.protected_sites(PROT_REDZONE)),
                "unprotected": len(self.protected_sites(PROT_NONE)),
            },
            "quarantined": len(self.quarantine),
            "static_coverage": self.static_coverage(),
        }

    def protected_sites(self, kind: str) -> List[int]:
        return sorted(site for site, prot in self.protection.items() if prot == kind)

    def static_coverage(self) -> float:
        """Fraction of instrumented sites carrying the full check."""
        instrumented = [p for p in self.protection.values() if p != PROT_NONE]
        if not instrumented:
            return 0.0
        return sum(1 for p in instrumented if p == PROT_LOWFAT) / len(instrumented)

    def quarantine_report(self) -> str:
        """Human-readable account of sites skipped by the ladder."""
        if not self.quarantine:
            return "quarantine: no sites skipped"
        lines = [f"quarantine: {len(self.quarantine)} site(s) left uninstrumented"]
        for head, reason in self.quarantine:
            lines.append(f"  {head:#x}: {reason}")
        if self.stats.degraded_sites:
            lines.append(
                f"  (+{self.stats.degraded_sites} site(s) degraded to redzone-only)"
            )
        return "\n".join(lines)


class RedFat:
    """The instrumentation tool (paper §7: ``redfat prog.orig``)."""

    def __init__(
        self,
        options: Optional[RedFatOptions] = None,
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        self.options = options or RedFatOptions()
        self.telemetry = coerce(telemetry)

    def instrument(self, binary: Binary) -> HardenResult:
        """Produce the hardened (or profiling) version of *binary*.

        The input image is never modified.  Works identically on stripped
        binaries: nothing here consults the symbol table.

        When the tool carries a :class:`~repro.telemetry.Telemetry` hub,
        each phase runs under a span (``disasm``, ``cfg``, ``analysis``,
        ``batching``, ``checkgen``, ``patching``) and the Table-1
        counters (``checks.inserted/eliminated/batched/merged``) are
        recorded as the phases produce them.
        """
        options = self.options
        tele = self.telemetry
        with tele.span("instrument", profile=options.profile_mode):
            control_flow = recover_control_flow(binary, telemetry=tele)
            dataflow = None
            if (options.flow_elim or options.dominated_elim
                    or options.global_liveness or options.interproc_elim):
                dataflow = analyze_control_flow(
                    control_flow, telemetry=tele,
                    interproc=options.interproc_elim,
                )
            with tele.span("analysis"):
                sites, stats = find_candidate_sites(
                    control_flow, options, dataflow=dataflow
                )
            with tele.span("batching"):
                groups = build_groups(control_flow, sites, options)
            # Pre-seed the Table-1 counters so even a site-free binary
            # exports the full counter set (the --metrics contract).
            tele.count("checks.inserted", 0)
            tele.count("checks.merged", 0)
            tele.count("checks.eliminated", stats.eliminated)
            tele.count("checks.eliminated_provenance",
                       stats.eliminated_provenance)
            tele.count("checks.eliminated_dominated",
                       stats.eliminated_dominated)
            tele.count("checks.eliminated_range", stats.eliminated_range)
            tele.count("liveness.spills_avoided", 0)
            tele.count("checks.batched",
                       sum(len(group) - 1 for group in groups))
            tele.count("analysis.memory_operands", stats.memory_operands)
            tele.count("analysis.candidates", stats.candidates)
            tele.count("analysis.skipped_reads", stats.skipped_reads)
            tele.count("batching.groups", len(groups))

            rewriter = Rewriter(
                binary, control_flow, keep_going=options.keep_going,
                telemetry=tele,
            )
            if not binary.has_segment(SIZES_SEGMENT):
                rewriter.add_segment(sizes_table_segment())

            protection: Dict[int, str] = {}
            site_table: Dict[int, List[CheckSite]] = {}
            group_sites: Dict[int, List[CheckSite]] = {}
            quarantine: List[Tuple[int, str]] = []

            with tele.span("checkgen"):
                for group in groups:
                    head = group.head_address
                    group_sites[head] = group.sites
                    if options.profile_mode:
                        items = [
                            Instruction(
                                Opcode.RTCALL, (Imm(int(Service.PROFILE)),),
                                tag=head,
                            )
                        ]
                        site_table[head] = list(group.sites)
                        for site in group.sites:
                            protection[site.address] = PROT_REDZONE
                        tele.count("checks.inserted")
                    else:
                        items = self._generate_group(
                            control_flow, group, binary.is_pic, protection,
                            stats, quarantine, dataflow,
                        )
                        if items is None:
                            continue  # quarantined: no patch request at all
                    rewriter.request(PatchRequest(head, items))

            with tele.span("patching"):
                result = rewriter.finalize()
        encode_failed = {head for head, _reason in result.encode_failures}
        for head, _reason in result.skipped:
            for site in group_sites.get(head, ()):
                protection[site.address] = PROT_NONE
                if head in encode_failed:
                    stats.quarantined_sites += 1
        quarantine.extend(result.encode_failures)
        harden = HardenResult(
            binary=result.binary,
            rewrite=result,
            options=options,
            stats=stats,
            protection=protection,
            site_table=site_table,
            groups=len(groups),
            quarantine=quarantine,
        )
        tele.count("sites.lowfat", len(harden.protected_sites(PROT_LOWFAT)))
        tele.count("sites.redzone", len(harden.protected_sites(PROT_REDZONE)))
        tele.count("sites.unprotected", len(harden.protected_sites(PROT_NONE)))
        tele.count("sites.degraded", stats.degraded_sites)
        tele.count("sites.quarantined", stats.quarantined_sites)
        return harden

    # -- internals ----------------------------------------------------------

    def _generate_group(
        self, control_flow, group, pic: bool, protection, stats, quarantine,
        dataflow=None,
    ):
        """Generate one group's check items, degrading on failure.

        The protection ladder (paper §6): full lowfat+redzone checks
        first; if generation fails (no scratch registers, injected
        encoding fault), retry redzone-only; if that fails too, the group
        is quarantined (``keep_going``) or the error propagates.  Returns
        the item list, or None when the group was quarantined.
        """
        options = self.options
        tele = self.telemetry
        try:
            ranges = merge_group(group, options)
            items = self._generate_items(
                control_flow, group, ranges, pic, options, stats, dataflow
            )
        except InstrumentationError:
            degraded = options.with_(lowfat=False)
            try:
                ranges = merge_group(group, degraded)
                items = self._generate_items(
                    control_flow, group, ranges, pic, degraded, stats, dataflow
                )
            except InstrumentationError as secondary:
                if not options.keep_going:
                    raise
                quarantine.append((group.head_address, str(secondary)))
                for site in group.sites:
                    protection[site.address] = PROT_NONE
                stats.quarantined_sites += len(group.sites)
                tele.event("quarantine", head=group.head_address,
                           reason=str(secondary))
                return None
            for site in group.sites:
                protection[site.address] = PROT_REDZONE
            stats.degraded_sites += len(group.sites)
            tele.count("checks.inserted", len(ranges))
            tele.count("checks.merged", len(group.sites) - len(ranges))
            tele.event("degraded", head=group.head_address)
            return items
        for access_range in ranges:
            kind = PROT_LOWFAT if access_range.use_lowfat else PROT_REDZONE
            for site in access_range.sites:
                protection[site.address] = kind
        tele.count("checks.inserted", len(ranges))
        tele.count("checks.merged", len(group.sites) - len(ranges))
        return items

    def _generate_items(self, control_flow, group, ranges, pic: bool,
                        options=None, stats=None, dataflow=None):
        options = options or self.options
        head = group.head_address
        block = control_flow.block_of[head]
        index = next(
            i for i, instruction in enumerate(block.instructions)
            if instruction.address == head
        )
        local_dead: frozenset = frozenset()
        local_flags_dead = False
        if options.specialize_registers:
            local_dead = dead_registers_after(block.instructions, index)
            local_flags_dead = flags_dead_after(block.instructions, index)
        dead = local_dead
        flags_dead = local_flags_dead
        use_global = (
            options.specialize_registers and options.global_liveness
            and dataflow is not None
        )
        if use_global:
            global_dead = dataflow.dead_registers_after(block, index)
            if global_dead is not None:
                dead = dead | global_dead
            if dataflow.flags_dead_after(block, index):
                flags_dead = True
        if fault_point("checkgen.scratch"):
            raise InstrumentationError(
                f"site {head:#x}: injected scratch-register exhaustion"
            )
        try:
            scratch = pick_scratch_registers(
                group.operand_registers(), dead, SCRATCH_COUNT
            )
        except ValueError as error:
            raise InstrumentationError(f"site {head:#x}: {error}") from error
        save_registers = [register for register in scratch if register not in dead]
        if use_global and stats is not None:
            # Save/restore pairs the block-local rule would have emitted
            # for the same scratch set but the global live-out proves dead.
            avoided = sum(
                1 for register in scratch
                if register not in local_dead and register in dead
            )
            if flags_dead and not local_flags_dead:
                avoided += 1
            if avoided:
                stats.liveness_spills_avoided += avoided
                self.telemetry.count("liveness.spills_avoided", avoided)
        context = CheckContext(
            options=options,
            scratch=scratch,
            save_registers=save_registers,
            save_flags=not flags_dead,
            pic=pic,
        )
        return CheckGenerator(context).generate(ranges, head)
