"""Check merging (paper §6, Fig. 7).

Within one group, operands that share ``(segment, base, index, scale)``
and differ only in displacement are checked as a single merged access
covering ``[min disp, max disp+width)``.  Merging is sound and complete
relative to the individual checks: the accessed object is contiguous, so
all individual accesses are in bounds iff their convex hull is.

Sites only merge when they agree on low-fat eligibility under the active
allow-list — a (Redzone)-only site must not drag an allow-listed
neighbour down to redzone checking or vice versa.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.isa.operands import Mem
from repro.isa.registers import Register
from repro.core.analysis import CheckSite
from repro.core.batching import CheckGroup
from repro.core.options import RedFatOptions


@dataclass
class AccessRange:
    """One (possibly merged) checked address range within a group.

    The range covers ``[disp, disp + length)`` relative to
    ``base + index*scale``.
    """

    base: Optional[Register]
    index: Optional[Register]
    scale: int
    disp: int
    length: int
    sites: List[CheckSite] = field(default_factory=list)
    use_lowfat: bool = False

    @property
    def is_write(self) -> bool:
        return any(site.is_write for site in self.sites)

    @property
    def is_read(self) -> bool:
        return any(site.is_read for site in self.sites)

    @property
    def representative_site(self) -> int:
        """Lowest merged site address — used for error attribution."""
        return min(site.address for site in self.sites)

    def mem_operand(self) -> Mem:
        return Mem(self.disp, self.base, self.index, self.scale)


def _range_for_site(site: CheckSite, use_lowfat: bool) -> AccessRange:
    return AccessRange(
        base=site.mem.base,
        index=site.mem.index,
        scale=site.mem.scale,
        disp=site.mem.disp,
        length=site.width,
        sites=[site],
        use_lowfat=use_lowfat,
    )


def merge_group(group: CheckGroup, options: RedFatOptions) -> List[AccessRange]:
    """Compute the checked ranges for *group* under *options*."""

    def lowfat_for(site: CheckSite) -> bool:
        return site.lowfat_eligible and options.lowfat_allowed(site.address)

    if not options.merge:
        return [_range_for_site(site, lowfat_for(site)) for site in group.sites]

    merged: Dict[Tuple, AccessRange] = {}
    order: List[Tuple] = []
    for site in group.sites:
        use_lowfat = lowfat_for(site)
        key = (site.mem.base, site.mem.index, site.mem.scale, use_lowfat)
        existing = merged.get(key)
        if existing is None:
            merged[key] = _range_for_site(site, use_lowfat)
            order.append(key)
            continue
        low = min(existing.disp, site.mem.disp)
        high = max(existing.disp + existing.length, site.mem.disp + site.width)
        existing.disp = low
        existing.length = high - low
        existing.sites.append(site)
    return [merged[key] for key in order]
