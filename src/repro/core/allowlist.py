"""The allow-list (``allow.lst``) produced by the profiling phase.

Sites on the list were observed to always pass the (LowFat) check over
the test suite and receive the full (Redzone)+(LowFat) instrumentation;
everything else falls back to (Redzone)-only (paper §5, Fig. 5).
"""

from __future__ import annotations

from typing import Iterable, Iterator, Set


class AllowList:
    """A set of instruction addresses deemed safe for low-fat checking."""

    def __init__(self, sites: Iterable[int] = ()) -> None:
        self._sites: Set[int] = set(sites)

    def add(self, site: int) -> None:
        self._sites.add(site)

    def __contains__(self, site: int) -> bool:
        return site in self._sites

    def __len__(self) -> int:
        return len(self._sites)

    def __iter__(self) -> Iterator[int]:
        return iter(sorted(self._sites))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, AllowList):
            return NotImplemented
        return self._sites == other._sites

    # -- serialization (one hex address per line, '#' comments) ------------

    def dumps(self) -> str:
        lines = ["# RedFat allow-list: sites safe for (LowFat) checking"]
        lines += [f"{site:#x}" for site in sorted(self._sites)]
        return "\n".join(lines) + "\n"

    @classmethod
    def loads(cls, text: str) -> "AllowList":
        sites = []
        for raw_line in text.splitlines():
            line = raw_line.split("#", 1)[0].strip()
            if line:
                sites.append(int(line, 0))
        return cls(sites)

    def save(self, path) -> None:
        with open(path, "w") as handle:
            handle.write(self.dumps())

    @classmethod
    def load(cls, path) -> "AllowList":
        with open(path) as handle:
            return cls.loads(handle.read())

    def __repr__(self) -> str:
        return f"<AllowList {len(self._sites)} sites>"
