"""MiniC compiler driver: source text -> guest binary."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.binfmt.binary import Binary
from repro.vm.cpu import CPU
from repro.vm.loader import RunResult, load_binary
from repro.vm.runtime_iface import RuntimeEnvironment
from repro.cc.astnodes import Program
from repro.cc.codegen import ARGS_SLOTS, CodeGenerator
from repro.cc.parser import parse_source

#: Library routines compiled into every program (a miniature libc).
PRELUDE = """
int __rand_state;

int srand(int s) { __rand_state = s; return 0; }

int rand() {
    __rand_state = __rand_state * 6364136223846793005 + 1442695040888963407;
    return (__rand_state >> 33) & 0x3fffffff;
}

int memset(char *p, int v, int n) {
    for (int i = 0; i < n; i = i + 1) p[i] = v;
    return 0;
}

int memcpy(char *d, char *s, int n) {
    for (int i = 0; i < n; i = i + 1) d[i] = s[i];
    return 0;
}

int abs(int x) { if (x < 0) return -x; return x; }

int min(int a, int b) { if (a < b) return a; return b; }

int max(int a, int b) { if (a > b) return a; return b; }
"""


@dataclass
class CompiledProgram:
    """A compiled MiniC program plus run conveniences."""

    binary: Binary
    args_address: int
    source: str = ""

    def run(
        self,
        args: Sequence[int] = (),
        runtime: Optional[RuntimeEnvironment] = None,
        binary: Optional[Binary] = None,
        rebase: int = 0,
        max_instructions: int = 2_000_000_000,
        telemetry=None,
    ) -> RunResult:
        """Run this program (or a hardened *binary* of it) with inputs.

        *args* are written into the ``__args`` global before execution and
        read by the guest via ``arg(i)`` — the stand-in for command-line
        inputs/workload files.  *telemetry* switches the VM onto its
        traced loop (retired instructions, checks executed, fuel).
        """
        if runtime is None:
            from repro.runtime.glibc import GlibcRuntime

            runtime = GlibcRuntime()
        image = binary if binary is not None else self.binary
        cpu = load_binary(image, runtime, rebase=rebase, telemetry=telemetry)
        self.poke_args(cpu, args, rebase=rebase)
        status = cpu.run(max_instructions)
        return RunResult(status, cpu.instructions_executed, runtime.output, runtime, cpu)

    def poke_args(self, cpu: CPU, args: Sequence[int], rebase: int = 0) -> None:
        if len(args) > ARGS_SLOTS:
            raise ValueError(f"at most {ARGS_SLOTS} input words supported")
        for index, value in enumerate(args):
            cpu.memory.write_int(
                self.args_address + rebase + index * 8, value & ((1 << 64) - 1), 8
            )


def compile_source(
    source: str,
    pic: bool = False,
    include_prelude: bool = True,
    optimize: bool = True,
) -> CompiledProgram:
    """Compile MiniC *source* into a runnable guest binary.

    ``optimize`` toggles the -O1-style peephole pass (redundant local
    load/move elimination); semantics are identical either way.
    """
    text = (PRELUDE + "\n" + source) if include_prelude else source
    program: Program = parse_source(text)
    generator = CodeGenerator(program, pic=pic, optimize=optimize)
    binary = generator.compile()
    return CompiledProgram(
        binary=binary, args_address=generator.args_address, source=source
    )
