"""MiniC code generation.

A simple one-pass accumulator scheme: every expression leaves its value
in ``rax``; intermediates are pushed on the stack.  Array accesses compile
to scaled-index memory operands (``(%rax,%rcx,8)``) and struct fields to
``disp(%reg)`` operands — exactly the operand shapes RedFat's (LowFat)
component protects — while locals use rsp-relative operands (frames are
frame-pointer-omitted, as gcc -O2 emits them) and globals absolute or
rip-relative operands, all of which check elimination later removes.
Position-independent output replaces absolute global addresses with
rip-relative ``lea``.  A peephole pass (:mod:`repro.cc.peephole`)
eliminates redundant local reloads so consecutive field stores share a
base register.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.errors import CompileError
from repro.binfmt.binary import BinaryType
from repro.binfmt.builder import BinaryBuilder
from repro.isa.assembler import Item
from repro.isa.instructions import Instruction
from repro.isa.opcodes import Opcode
from repro.isa.operands import Imm, Label, Mem, Reg
from repro.isa.registers import (
    ARG_REGS,
    RAX,
    RCX,
    RDI,
    RDX,
    RSI,
    RSP,
    Register,
)
from repro.vm.runtime_iface import Service
from repro.cc.astnodes import (
    AddrOfExpr,
    AssignExpr,
    BinaryExpr,
    BlockStmt,
    BreakStmt,
    CallExpr,
    ContinueStmt,
    DeclStmt,
    DerefExpr,
    Expr,
    ExprStmt,
    ForStmt,
    FunctionDecl,
    IfStmt,
    IndexExpr,
    INT,
    MemberExpr,
    NumberExpr,
    Program,
    ReturnStmt,
    Stmt,
    StructLayout,
    Type,
    UnaryExpr,
    VarExpr,
    WhileStmt,
    pointer_to,
)

#: Number of 8-byte input words the harness may poke into ``__args``.
ARGS_SLOTS = 64

_BUILTIN_SERVICES = {
    "malloc": Service.MALLOC,
    "free": Service.FREE,
    "calloc": Service.CALLOC,
    "realloc": Service.REALLOC,
    "print": Service.PRINT_INT,
    "printc": Service.PRINT_CHAR,
}

_CMP_OPCODES = {
    "<": Opcode.SETL,
    "<=": Opcode.SETLE,
    ">": Opcode.SETG,
    ">=": Opcode.SETGE,
    "==": Opcode.SETE,
    "!=": Opcode.SETNE,
}

_ALU_OPCODES = {
    "+": Opcode.ADD,
    "-": Opcode.SUB,
    "*": Opcode.IMUL,
    "/": Opcode.IDIV,
    "%": Opcode.IMOD,
    "&": Opcode.AND,
    "|": Opcode.OR,
    "^": Opcode.XOR,
    "<<": Opcode.SHL,
    ">>": Opcode.SAR,
}


def _is_call_free(expr: Expr) -> bool:
    """True when evaluating *expr* cannot clobber rsi (no calls/assigns)."""
    if isinstance(expr, (CallExpr, AssignExpr)):
        return False
    if isinstance(expr, BinaryExpr):
        return _is_call_free(expr.left) and _is_call_free(expr.right)
    if isinstance(expr, UnaryExpr):
        return _is_call_free(expr.operand)
    if isinstance(expr, (DerefExpr, AddrOfExpr)):
        return _is_call_free(expr.operand)
    if isinstance(expr, IndexExpr):
        return _is_call_free(expr.base) and _is_call_free(expr.index)
    if isinstance(expr, MemberExpr):
        return _is_call_free(expr.base)
    return True


class _Scope:
    """Lexical scope mapping names to (frame slot offset, type)."""

    def __init__(self, parent: Optional["_Scope"] = None) -> None:
        self.parent = parent
        self.entries: Dict[str, Tuple[int, Type]] = {}

    def define(self, name: str, offset: int, declared: Type, line: int) -> None:
        if name in self.entries:
            raise CompileError(f"duplicate local {name!r}", line)
        self.entries[name] = (offset, declared)

    def lookup(self, name: str) -> Optional[Tuple[int, Type]]:
        scope: Optional[_Scope] = self
        while scope is not None:
            if name in scope.entries:
                return scope.entries[name]
            scope = scope.parent
        return None


class CodeGenerator:
    """Compiles a parsed :class:`Program` into a guest binary."""

    def __init__(
        self, program: Program, pic: bool = False, optimize: bool = True
    ) -> None:
        self.program = program
        self.pic = pic
        self.optimize = optimize
        self.builder = BinaryBuilder(
            binary_type=BinaryType.PIC if pic else BinaryType.EXEC
        )
        self.functions: Dict[str, FunctionDecl] = {
            function.name: function for function in program.functions
        }
        self.global_types: Dict[str, Type] = {}
        self.global_addresses: Dict[str, int] = {}
        self._label_counter = 0
        self.args_address = 0

    # -- label helper -------------------------------------------------------

    def _label(self, stem: str) -> str:
        self._label_counter += 1
        return f".L{stem}{self._label_counter}"

    # -- type helpers -----------------------------------------------------------

    def struct_layout(self, declared: Type, line: int) -> StructLayout:
        layout = self.program.structs.get(declared.struct_name)
        if layout is None:
            raise CompileError(f"unknown struct {declared.struct_name!r}", line)
        return layout

    def type_size(self, declared: Type, line: int) -> int:
        if declared.kind == "struct":
            return self.struct_layout(declared, line).size
        if declared.kind == "array":
            return self.type_size(declared.elem, line) * declared.count
        return declared.size

    def _access_width(self, declared: Type) -> int:
        return 1 if declared.kind == "char" else 8

    # -- globals --------------------------------------------------------------

    def _layout_globals(self) -> None:
        self.args_address = self.builder.add_global("__args", ARGS_SLOTS * 8)
        self.global_types["__args"] = Type("array", elem=INT, count=ARGS_SLOTS)
        self.global_addresses["__args"] = self.args_address
        for decl in self.program.globals:
            size = self.type_size(decl.type, decl.line)
            init = None
            if decl.init_words is not None:
                width = self._access_width(
                    decl.type.elem if decl.type.kind == "array" else decl.type
                )
                init = b"".join(
                    (word & ((1 << (8 * width)) - 1)).to_bytes(width, "little")
                    for word in decl.init_words
                )
            address = self.builder.add_global(decl.name, size, init=init)
            self.global_types[decl.name] = decl.type
            self.global_addresses[decl.name] = address

    # -- compilation entry point ---------------------------------------------------

    def compile(self):
        self._layout_globals()
        self._emit_start_stub()
        self._emit_builtin_stubs()
        if "main" not in self.functions:
            raise CompileError("program has no main()")
        for function in self.program.functions:
            self.builder.add_function(
                function.name, _FunctionCompiler(self, function).compile()
            )
        return self.builder.build("_start")

    def _emit_start_stub(self) -> None:
        items: List[Item] = [
            Instruction(Opcode.CALL, (Label("main"),)),
            Instruction(Opcode.MOV, (Reg(RDI), Reg(RAX))),
            Instruction(Opcode.RTCALL, (Imm(int(Service.EXIT)),)),
        ]
        self.builder.add_function("_start", items)

    def _emit_builtin_stubs(self) -> None:
        for name, service in _BUILTIN_SERVICES.items():
            if name in self.functions:
                continue  # user-defined override
            self.builder.add_function(
                name,
                [
                    Instruction(Opcode.RTCALL, (Imm(int(service)),)),
                    Instruction(Opcode.RET),
                ],
            )
        # arg(i): read the i-th harness-supplied input word.
        items: List[Item] = []
        if self.pic:
            items.append(
                Instruction(
                    Opcode.LEA, (Reg(RAX), Mem(0, Register.RIP)),
                    abs_target=self.args_address,
                )
            )
            items.append(
                Instruction(Opcode.MOV, (Reg(RAX), Mem(0, RAX, RDI, 8)))
            )
        else:
            items.append(
                Instruction(
                    Opcode.MOV, (Reg(RAX), Mem(self.args_address, None, RDI, 8))
                )
            )
        items.append(Instruction(Opcode.RET))
        self.builder.add_function("arg", items)


class _FunctionCompiler:
    """Compiles one function body to assembler items.

    Stack frames are rsp-relative with the frame pointer omitted, as gcc
    -O2 emits them (and as the paper's check-elimination rule expects:
    rsp-based operands provably cannot reach the heap).  Because
    expression evaluation pushes intermediates, the compiler tracks the
    push depth at every emission point and back-patches each local's
    displacement with ``frame - slot + 8*depth`` once the final frame
    size is known.
    """

    def __init__(self, generator: CodeGenerator, function: FunctionDecl) -> None:
        self.gen = generator
        self.function = function
        self.items: List[Item] = []
        self.scope = _Scope()
        self.frame_size = 0
        self.push_depth = 0
        self.epilogue_label = generator._label(f"ret_{function.name}_")
        self.loop_stack: List[Tuple[str, str]] = []  # (break, continue)
        # (instruction, slot_offset, push_depth) needing disp back-patching.
        self._local_fixups: List[Tuple[Instruction, int, int]] = []

    # -- emit helpers ---------------------------------------------------------

    def emit(self, opcode: Opcode, *operands, size: int = 8, **kw) -> None:
        self.items.append(Instruction(opcode, tuple(operands), size=size, **kw))
        if opcode in (Opcode.PUSH, Opcode.PUSHF):
            self.push_depth += 1
        elif opcode in (Opcode.POP, Opcode.POPF):
            self.push_depth -= 1

    def emit_label(self, name: str) -> None:
        self.items.append(Label(name))

    def _emit_local_access(
        self, opcode: Opcode, slot_offset: int, other, size: int = 8,
        mem_first: bool = True,
    ) -> None:
        mem = Mem(0, RSP)
        operands = (mem, other) if mem_first else (other, mem)
        instruction = Instruction(opcode, operands, size=size)
        self.items.append(instruction)
        self._local_fixups.append((instruction, slot_offset, self.push_depth))

    # -- frame allocation -------------------------------------------------------

    def _alloc_slot(self, size: int) -> int:
        aligned = (size + 7) & ~7
        self.frame_size += aligned
        return self.frame_size  # distance from the frame's high end

    # -- compile ------------------------------------------------------------------

    def compile(self) -> List[Item]:
        function = self.function
        if len(function.params) > len(ARG_REGS):
            raise CompileError(
                f"{function.name}: too many parameters", function.line
            )
        frame_patch = Instruction(Opcode.SUB, (Reg(RSP), Imm(0)))
        self.items.append(frame_patch)
        for index, (name, declared) in enumerate(function.params):
            offset = self._alloc_slot(8)
            self.scope.define(name, offset, declared, function.line)
            self._emit_local_access(
                Opcode.MOV, offset, Reg(ARG_REGS[index]), mem_first=True
            )
        for statement in function.body:
            self.statement(statement)
        # Implicit return 0.
        self.emit(Opcode.MOV, Reg(RAX), Imm(0))
        self.emit_label(self.epilogue_label)
        epilogue_patch = Instruction(Opcode.ADD, (Reg(RSP), Imm(0)))
        self.items.append(epilogue_patch)
        self.emit(Opcode.RET)
        # Redundant-load elimination (must precede displacement fixup:
        # the pass identifies locals through the fixup records).
        if self.gen.optimize:
            from repro.cc.peephole import eliminate_redundant_local_ops

            self.items, self._local_fixups = eliminate_redundant_local_ops(
                self.items, self._local_fixups
            )
        # Back-patch the frame size (16-byte aligned) and local operands.
        frame = (self.frame_size + 15) & ~15
        frame_patch.operands = (Reg(RSP), Imm(frame))
        epilogue_patch.operands = (Reg(RSP), Imm(frame))
        for instruction, slot_offset, depth in self._local_fixups:
            disp = frame - slot_offset + 8 * depth
            fixed = tuple(
                operand.with_disp(disp)
                if isinstance(operand, Mem) and operand.base is RSP
                else operand
                for operand in instruction.operands
            )
            instruction.operands = fixed
        return self.items

    # -- statements ------------------------------------------------------------------

    def statement(self, statement: Stmt) -> None:
        if isinstance(statement, DeclStmt):
            self._decl(statement)
        elif isinstance(statement, ExprStmt):
            self.expression(statement.expr)
        elif isinstance(statement, IfStmt):
            self._if(statement)
        elif isinstance(statement, WhileStmt):
            self._while(statement)
        elif isinstance(statement, ForStmt):
            self._for(statement)
        elif isinstance(statement, ReturnStmt):
            if statement.value is not None:
                self.expression(statement.value)
            else:
                self.emit(Opcode.MOV, Reg(RAX), Imm(0))
            self.emit(Opcode.JMP, Label(self.epilogue_label))
        elif isinstance(statement, BreakStmt):
            if not self.loop_stack:
                raise CompileError("break outside loop", statement.line)
            self.emit(Opcode.JMP, Label(self.loop_stack[-1][0]))
        elif isinstance(statement, ContinueStmt):
            if not self.loop_stack:
                raise CompileError("continue outside loop", statement.line)
            self.emit(Opcode.JMP, Label(self.loop_stack[-1][1]))
        elif isinstance(statement, BlockStmt):
            self.scope = _Scope(self.scope)
            for inner in statement.body:
                self.statement(inner)
            self.scope = self.scope.parent
        else:
            raise CompileError(f"unsupported statement {statement!r}", statement.line)

    def _decl(self, statement: DeclStmt) -> None:
        size = self.gen.type_size(statement.type, statement.line)
        offset = self._alloc_slot(size)
        self.scope.define(statement.name, offset, statement.type, statement.line)
        if statement.init is not None:
            if not statement.type.is_scalar:
                raise CompileError(
                    "only scalar locals may have initializers", statement.line
                )
            self.expression(statement.init)
            self._emit_local_access(
                Opcode.MOV, offset, Reg(RAX),
                size=self.gen._access_width(statement.type),
            )

    def _if(self, statement: IfStmt) -> None:
        else_label = self.gen._label("else")
        end_label = self.gen._label("endif")
        self.expression(statement.cond)
        self.emit(Opcode.TEST, Reg(RAX), Reg(RAX))
        self.emit(Opcode.JE, Label(else_label))
        self.scope = _Scope(self.scope)
        for inner in statement.then_body:
            self.statement(inner)
        self.scope = self.scope.parent
        if statement.else_body:
            self.emit(Opcode.JMP, Label(end_label))
            self.emit_label(else_label)
            self.scope = _Scope(self.scope)
            for inner in statement.else_body:
                self.statement(inner)
            self.scope = self.scope.parent
            self.emit_label(end_label)
        else:
            self.emit_label(else_label)

    def _while(self, statement: WhileStmt) -> None:
        head = self.gen._label("while")
        end = self.gen._label("wend")
        self.loop_stack.append((end, head))
        self.emit_label(head)
        self.expression(statement.cond)
        self.emit(Opcode.TEST, Reg(RAX), Reg(RAX))
        self.emit(Opcode.JE, Label(end))
        self.scope = _Scope(self.scope)
        for inner in statement.body:
            self.statement(inner)
        self.scope = self.scope.parent
        self.emit(Opcode.JMP, Label(head))
        self.emit_label(end)
        self.loop_stack.pop()

    def _for(self, statement: ForStmt) -> None:
        head = self.gen._label("for")
        step_label = self.gen._label("fstep")
        end = self.gen._label("fend")
        self.scope = _Scope(self.scope)
        if statement.init is not None:
            self.statement(statement.init)
        self.loop_stack.append((end, step_label))
        self.emit_label(head)
        if statement.cond is not None:
            self.expression(statement.cond)
            self.emit(Opcode.TEST, Reg(RAX), Reg(RAX))
            self.emit(Opcode.JE, Label(end))
        for inner in statement.body:
            self.statement(inner)
        self.emit_label(step_label)
        if statement.step is not None:
            self.expression(statement.step)
        self.emit(Opcode.JMP, Label(head))
        self.emit_label(end)
        self.loop_stack.pop()
        self.scope = self.scope.parent

    # -- lvalues ------------------------------------------------------------------

    def lvalue_address(self, expr: Expr) -> Type:
        """Leave the address of *expr* in rax; return the value type."""
        if isinstance(expr, VarExpr):
            local = self.scope.lookup(expr.name)
            if local is not None:
                offset, declared = local
                self._emit_local_access(Opcode.LEA, offset, Reg(RAX), mem_first=False)
                return declared
            if expr.name in self.gen.global_addresses:
                self._global_address(expr.name)
                return self.gen.global_types[expr.name]
            raise CompileError(f"undefined variable {expr.name!r}", expr.line)
        if isinstance(expr, DerefExpr):
            pointee = self.expression(expr.operand)
            if pointee.kind != "ptr":
                raise CompileError("cannot dereference a non-pointer", expr.line)
            return pointee.elem
        if isinstance(expr, IndexExpr):
            return self._index_address(expr)
        if isinstance(expr, MemberExpr):
            return self._member_address(expr)
        raise CompileError("expression is not an lvalue", expr.line)

    def _global_address(self, name: str) -> None:
        address = self.gen.global_addresses[name]
        if self.gen.pic:
            self.emit(Opcode.LEA, Reg(RAX), Mem(0, Register.RIP), abs_target=address)
        else:
            self.emit(Opcode.MOV, Reg(RAX), Imm(address))

    def _index_address(self, expr: IndexExpr) -> Type:
        """rax = &base[index]; returns the element type."""
        self.expression(expr.index)
        self.emit(Opcode.PUSH, Reg(RAX))
        base_type = self.expression(expr.base)
        if base_type.kind == "ptr":
            elem = base_type.elem
        elif base_type.kind == "array":
            elem = base_type.elem
        else:
            raise CompileError("cannot index a non-array", expr.line)
        self.emit(Opcode.POP, Reg(RCX))
        elem_size = self.gen.type_size(elem, expr.line)
        if elem_size in (1, 2, 4, 8):
            self.emit(Opcode.LEA, Reg(RAX), Mem(0, RAX, RCX, elem_size))
        else:
            self.emit(Opcode.IMUL, Reg(RCX), Imm(elem_size))
            self.emit(Opcode.LEA, Reg(RAX), Mem(0, RAX, RCX, 1))
        return elem

    def _member_base_disp(self, expr: MemberExpr) -> Tuple[Type, int]:
        """Leave the *struct base* address in rax; return (type, disp).

        Keeping the field offset as an operand displacement (instead of
        folding it into the register) produces the ``disp(%reg)`` access
        runs that make check batching/merging effective, exactly like a
        register-allocating compiler would.
        """
        if expr.arrow:
            base_type = self.expression(expr.base)
            if base_type.kind != "ptr" or base_type.elem.kind != "struct":
                raise CompileError("-> requires a struct pointer", expr.line)
            struct_type = base_type.elem
            disp = 0
        elif isinstance(expr.base, MemberExpr):
            struct_type, disp = self._member_base_disp(expr.base)
            if struct_type.kind != "struct":
                raise CompileError(". requires a struct value", expr.line)
        else:
            struct_type = self.lvalue_address(expr.base)
            if struct_type.kind != "struct":
                raise CompileError(". requires a struct value", expr.line)
            disp = 0
        layout = self.gen.struct_layout(struct_type, expr.line)
        entry = layout.field_of(expr.member)
        if entry is None:
            raise CompileError(
                f"struct {layout.name} has no member {expr.member!r}", expr.line
            )
        _, member_type, offset = entry
        return member_type, disp + offset

    def _member_address(self, expr: MemberExpr) -> Type:
        member_type, disp = self._member_base_disp(expr)
        if disp:
            self.emit(Opcode.LEA, Reg(RAX), Mem(disp, RAX))
        return member_type

    # -- expressions ---------------------------------------------------------------

    def expression(self, expr: Expr) -> Type:
        """Evaluate *expr* into rax; return its type."""
        if isinstance(expr, NumberExpr):
            self.emit(Opcode.MOV, Reg(RAX), Imm(expr.value))
            return INT
        if isinstance(expr, VarExpr):
            return self._var_value(expr)
        if isinstance(expr, AssignExpr):
            return self._assign(expr)
        if isinstance(expr, BinaryExpr):
            return self._binary(expr)
        if isinstance(expr, UnaryExpr):
            return self._unary(expr)
        if isinstance(expr, DerefExpr):
            pointee = self.expression(expr.operand)
            if pointee.kind != "ptr":
                raise CompileError("cannot dereference a non-pointer", expr.line)
            elem = pointee.elem
            self.emit(
                Opcode.MOV, Reg(RAX), Mem(0, RAX),
                size=self.gen._access_width(elem),
            )
            return elem
        if isinstance(expr, AddrOfExpr):
            inner = self.lvalue_address(expr.operand)
            return pointer_to(inner)
        if isinstance(expr, IndexExpr):
            return self._index_value(expr)
        if isinstance(expr, MemberExpr):
            member_type, disp = self._member_base_disp(expr)
            if member_type.is_scalar:
                self.emit(
                    Opcode.MOV, Reg(RAX), Mem(disp, RAX),
                    size=self.gen._access_width(member_type),
                )
                return member_type
            if disp:
                self.emit(Opcode.LEA, Reg(RAX), Mem(disp, RAX))
            if member_type.kind == "array":
                return pointer_to(member_type.elem)
            return member_type
        if isinstance(expr, CallExpr):
            return self._call(expr)
        raise CompileError(f"unsupported expression {expr!r}", expr.line)

    def _load_through_rax(self, value_type: Type) -> Type:
        """rax holds an address; load the value unless it is an aggregate."""
        if value_type.is_scalar:
            self.emit(
                Opcode.MOV, Reg(RAX), Mem(0, RAX),
                size=self.gen._access_width(value_type),
            )
            return value_type
        if value_type.kind == "array":
            return pointer_to(value_type.elem)  # decay: address already in rax
        return value_type  # struct value: its address

    def _var_value(self, expr: VarExpr) -> Type:
        local = self.scope.lookup(expr.name)
        if local is not None:
            offset, declared = local
            if declared.is_scalar:
                self._emit_local_access(
                    Opcode.MOV, offset, Reg(RAX), mem_first=False,
                    size=self.gen._access_width(declared),
                )
                return declared
            self._emit_local_access(Opcode.LEA, offset, Reg(RAX), mem_first=False)
            if declared.kind == "array":
                return pointer_to(declared.elem)
            return declared
        if expr.name in self.gen.global_addresses:
            declared = self.gen.global_types[expr.name]
            if declared.is_scalar:
                if self.gen.pic:
                    self._global_address(expr.name)
                    return self._load_through_rax(declared)
                self.emit(
                    Opcode.MOV, Reg(RAX),
                    Mem(self.gen.global_addresses[expr.name]),
                    size=self.gen._access_width(declared),
                )
                return declared
            self._global_address(expr.name)
            if declared.kind == "array":
                return pointer_to(declared.elem)
            return declared
        raise CompileError(f"undefined variable {expr.name!r}", expr.line)

    def _index_value(self, expr: IndexExpr) -> Type:
        """Load base[index] using a scaled-index operand when possible."""
        self.expression(expr.index)
        self.emit(Opcode.PUSH, Reg(RAX))
        base_type = self.expression(expr.base)
        if base_type.kind not in ("ptr", "array"):
            raise CompileError("cannot index a non-array", expr.line)
        elem = base_type.elem
        self.emit(Opcode.POP, Reg(RCX))
        elem_size = self.gen.type_size(elem, expr.line)
        if elem.is_scalar and elem_size in (1, 2, 4, 8):
            self.emit(
                Opcode.MOV, Reg(RAX), Mem(0, RAX, RCX, elem_size),
                size=self.gen._access_width(elem),
            )
            return elem
        if elem_size in (1, 2, 4, 8):
            self.emit(Opcode.LEA, Reg(RAX), Mem(0, RAX, RCX, elem_size))
        else:
            self.emit(Opcode.IMUL, Reg(RCX), Imm(elem_size))
            self.emit(Opcode.LEA, Reg(RAX), Mem(0, RAX, RCX, 1))
        return self._load_through_rax(elem)

    def _assign(self, expr: AssignExpr) -> Type:
        target = expr.target
        # Fast paths keep idiomatic operand shapes for stores.
        if isinstance(target, VarExpr):
            local = self.scope.lookup(target.name)
            if local is not None:
                offset, declared = local
                if not declared.is_scalar:
                    raise CompileError("cannot assign to an aggregate", expr.line)
                value_type = self.expression(expr.value)
                self._emit_local_access(
                    Opcode.MOV, offset, Reg(RAX),
                    size=self.gen._access_width(declared),
                )
                return declared
            if target.name in self.gen.global_addresses:
                declared = self.gen.global_types[target.name]
                if not declared.is_scalar:
                    raise CompileError("cannot assign to an aggregate", expr.line)
                self.expression(expr.value)
                if self.gen.pic:
                    self.emit(Opcode.MOV, Reg(RDX), Reg(RAX))
                    self._global_address(target.name)
                    self.emit(Opcode.MOV, Reg(RCX), Reg(RAX))
                    self.emit(
                        Opcode.MOV, Mem(0, RCX), Reg(RDX),
                        size=self.gen._access_width(declared),
                    )
                    self.emit(Opcode.MOV, Reg(RAX), Reg(RDX))
                else:
                    self.emit(
                        Opcode.MOV,
                        Mem(self.gen.global_addresses[target.name]),
                        Reg(RAX),
                        size=self.gen._access_width(declared),
                    )
                return declared
            raise CompileError(f"undefined variable {target.name!r}", target.line)
        if isinstance(target, IndexExpr):
            return self._indexed_store(target, expr.value, expr.line)
        if isinstance(target, MemberExpr) and _is_call_free(expr.value):
            # Fast path: hold the struct base in rsi across the (call-free)
            # value computation, storing with a disp(%rsi) operand.  Runs
            # of field assignments then share one base register — the
            # shape check batching/merging exploits.
            member_type, disp = self._member_base_disp(target)
            if not member_type.is_scalar:
                raise CompileError("cannot assign to an aggregate", expr.line)
            self.emit(Opcode.MOV, Reg(RSI), Reg(RAX))
            self.expression(expr.value)
            self.emit(
                Opcode.MOV, Mem(disp, RSI), Reg(RAX),
                size=self.gen._access_width(member_type),
            )
            return member_type
        # General path: value, then address, then store through it.
        value_type = self.expression(expr.value)
        self.emit(Opcode.PUSH, Reg(RAX))
        target_type = self.lvalue_address(target)
        if not target_type.is_scalar:
            raise CompileError("cannot assign to an aggregate", expr.line)
        self.emit(Opcode.POP, Reg(RDX))
        self.emit(
            Opcode.MOV, Mem(0, RAX), Reg(RDX),
            size=self.gen._access_width(target_type),
        )
        self.emit(Opcode.MOV, Reg(RAX), Reg(RDX))
        return target_type

    def _indexed_store(self, target: IndexExpr, value: Expr, line: int) -> Type:
        """base[index] = value with a scaled-index store operand."""
        self.expression(value)
        self.emit(Opcode.PUSH, Reg(RAX))
        self.expression(target.index)
        self.emit(Opcode.PUSH, Reg(RAX))
        base_type = self.expression(target.base)
        if base_type.kind not in ("ptr", "array"):
            raise CompileError("cannot index a non-array", line)
        elem = base_type.elem
        if not elem.is_scalar:
            raise CompileError("cannot assign to an aggregate element", line)
        self.emit(Opcode.POP, Reg(RCX))
        self.emit(Opcode.POP, Reg(RDX))
        elem_size = self.gen.type_size(elem, line)
        width = self.gen._access_width(elem)
        if elem_size in (1, 2, 4, 8):
            self.emit(
                Opcode.MOV, Mem(0, RAX, RCX, elem_size), Reg(RDX), size=width
            )
        else:  # pragma: no cover - scalar sizes are 1 or 8
            self.emit(Opcode.IMUL, Reg(RCX), Imm(elem_size))
            self.emit(Opcode.MOV, Mem(0, RAX, RCX, 1), Reg(RDX), size=width)
        self.emit(Opcode.MOV, Reg(RAX), Reg(RDX))
        return elem

    def _binary(self, expr: BinaryExpr) -> Type:
        op = expr.op
        if op in ("&&", "||"):
            return self._short_circuit(expr)
        self.expression(expr.left)
        self.emit(Opcode.PUSH, Reg(RAX))
        right_type = self.expression(expr.right)
        self.emit(Opcode.MOV, Reg(RCX), Reg(RAX))
        self.emit(Opcode.POP, Reg(RAX))
        # Re-derive the left type (no emission) for pointer arithmetic.
        left_type = self._static_type(expr.left)
        if op in _CMP_OPCODES:
            self.emit(Opcode.CMP, Reg(RAX), Reg(RCX))
            self.emit(_CMP_OPCODES[op], Reg(RAX))
            return INT
        if op in ("+", "-") and left_type is not None and left_type.kind == "ptr":
            elem_size = self.gen.type_size(left_type.elem, expr.line)
            if elem_size != 1:
                self.emit(Opcode.IMUL, Reg(RCX), Imm(elem_size))
            self.emit(_ALU_OPCODES[op], Reg(RAX), Reg(RCX))
            return left_type
        if op not in _ALU_OPCODES:
            raise CompileError(f"unsupported operator {op!r}", expr.line)
        self.emit(_ALU_OPCODES[op], Reg(RAX), Reg(RCX))
        return left_type if left_type is not None and left_type.kind == "ptr" else INT

    def _short_circuit(self, expr: BinaryExpr) -> Type:
        end = self.gen._label("sc")
        self.expression(expr.left)
        self.emit(Opcode.TEST, Reg(RAX), Reg(RAX))
        if expr.op == "&&":
            self.emit(Opcode.MOV, Reg(RAX), Imm(0))
            self.emit(Opcode.JE, Label(end))
        else:
            self.emit(Opcode.MOV, Reg(RAX), Imm(1))
            self.emit(Opcode.JNE, Label(end))
        self.expression(expr.right)
        self.emit(Opcode.TEST, Reg(RAX), Reg(RAX))
        self.emit(Opcode.SETNE, Reg(RAX))
        self.emit_label(end)
        return INT

    def _unary(self, expr: UnaryExpr) -> Type:
        operand_type = self.expression(expr.operand)
        if expr.op == "-":
            self.emit(Opcode.NEG, Reg(RAX))
        elif expr.op == "~":
            self.emit(Opcode.NOT, Reg(RAX))
        elif expr.op == "!":
            self.emit(Opcode.TEST, Reg(RAX), Reg(RAX))
            self.emit(Opcode.SETE, Reg(RAX))
            return INT
        else:
            raise CompileError(f"unsupported unary {expr.op!r}", expr.line)
        return operand_type

    def _call(self, expr: CallExpr) -> Type:
        if len(expr.args) > len(ARG_REGS):
            raise CompileError("too many call arguments", expr.line)
        known = expr.name in self.gen.functions or expr.name in _BUILTIN_SERVICES
        if not known and expr.name != "arg":
            raise CompileError(f"undefined function {expr.name!r}", expr.line)
        for argument in expr.args:
            self.expression(argument)
            self.emit(Opcode.PUSH, Reg(RAX))
        for register in reversed(ARG_REGS[: len(expr.args)]):
            self.emit(Opcode.POP, Reg(register))
        self.emit(Opcode.CALL, Label(expr.name))
        declared = self.gen.functions.get(expr.name)
        if declared is not None:
            return declared.return_type
        if expr.name == "malloc" or expr.name == "calloc" or expr.name == "realloc":
            return pointer_to(INT)
        return INT

    # -- static (emission-free) typing for pointer arithmetic ----------------------

    def _static_type(self, expr: Expr) -> Optional[Type]:
        if isinstance(expr, VarExpr):
            local = self.scope.lookup(expr.name)
            if local is not None:
                declared = local[1]
            elif expr.name in self.gen.global_types:
                declared = self.gen.global_types[expr.name]
            else:
                return None
            if declared.kind == "array":
                return pointer_to(declared.elem)
            return declared
        if isinstance(expr, BinaryExpr) and expr.op in ("+", "-"):
            return self._static_type(expr.left)
        if isinstance(expr, CallExpr):
            if expr.name in ("malloc", "calloc", "realloc"):
                return pointer_to(INT)
            declared = self.gen.functions.get(expr.name)
            return declared.return_type if declared else INT
        if isinstance(expr, IndexExpr):
            base = self._static_type(expr.base)
            if base is not None and base.kind in ("ptr", "array"):
                elem = base.elem
                if elem.kind == "array":
                    return pointer_to(elem.elem)
                return elem
            return None
        if isinstance(expr, MemberExpr):
            base = self._static_type(expr.base)
            struct_type = None
            if expr.arrow and base is not None and base.kind == "ptr":
                struct_type = base.elem
            elif not expr.arrow and base is not None:
                struct_type = base
            if struct_type is None or struct_type.kind != "struct":
                return None
            layout = self.gen.program.structs.get(struct_type.struct_name)
            if layout is None:
                return None
            entry = layout.field_of(expr.member)
            if entry is None:
                return None
            member_type = entry[1]
            if member_type.kind == "array":
                return pointer_to(member_type.elem)
            return member_type
        if isinstance(expr, AddrOfExpr):
            inner = self._static_type(expr.operand)
            return pointer_to(inner) if inner is not None else None
        if isinstance(expr, DerefExpr):
            inner = self._static_type(expr.operand)
            if inner is not None and inner.kind == "ptr":
                return inner.elem
            return None
        if isinstance(expr, NumberExpr):
            return INT
        return None
