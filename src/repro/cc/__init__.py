"""MiniC: a small C-like language compiled to the guest ISA.

The compiler exists so that workloads (SPEC-like kernels, CVE
reproductions, Juliet cases, the Chrome stand-in) are *compiled binaries*
— with compiler-induced idioms, register allocation artifacts, stack
frames and memory-operand shapes — rather than hand-written assembly.
RedFat never sees MiniC; it hardens the stripped output image.

Language summary::

    int g;                     // 64-bit globals
    char buf[256];             // byte arrays (global or heap)
    struct node { int v; struct node *next; };

    int sum(int *a, int n) {
        int s = 0;
        for (int i = 0; i < n; i = i + 1) s = s + a[i];
        return s;
    }

    int main() {
        int *a = malloc(10 * 8);
        a[0] = 1;
        print(sum(a, 1));
        free(a);
        return 0;
    }

Builtins: ``malloc``, ``free``, ``print`` (an int), ``printc`` (a char),
``arg(i)`` (harness-supplied input word *i*).  ``char`` is unsigned.
"""

from repro.cc.compiler import CompiledProgram, compile_source

__all__ = ["compile_source", "CompiledProgram"]
