"""MiniC recursive-descent parser."""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.errors import CompileError
from repro.cc.astnodes import (
    AddrOfExpr,
    AssignExpr,
    BinaryExpr,
    BlockStmt,
    BreakStmt,
    CallExpr,
    CHAR,
    ContinueStmt,
    DeclStmt,
    DerefExpr,
    Expr,
    ExprStmt,
    ForStmt,
    FunctionDecl,
    GlobalDecl,
    IfStmt,
    IndexExpr,
    INT,
    MemberExpr,
    NumberExpr,
    Program,
    ReturnStmt,
    Stmt,
    StructLayout,
    Type,
    UnaryExpr,
    VarExpr,
    VOID,
    WhileStmt,
    array_of,
    pointer_to,
)
from repro.cc.lexer import Token, tokenize

_BINARY_LEVELS = [
    ["||"],
    ["&&"],
    ["|"],
    ["^"],
    ["&"],
    ["==", "!="],
    ["<", "<=", ">", ">="],
    ["<<", ">>"],
    ["+", "-"],
    ["*", "/", "%"],
]


class Parser:
    def __init__(self, source: str) -> None:
        self.tokens = tokenize(source)
        self.position = 0

    # -- token helpers -----------------------------------------------------

    @property
    def current(self) -> Token:
        return self.tokens[self.position]

    def advance(self) -> Token:
        token = self.current
        self.position += 1
        return token

    def check(self, text: str) -> bool:
        return self.current.text == text and self.current.kind in ("op", "keyword")

    def accept(self, text: str) -> bool:
        if self.check(text):
            self.advance()
            return True
        return False

    def expect(self, text: str) -> Token:
        if not self.check(text):
            raise CompileError(
                f"expected {text!r}, found {self.current.text!r}", self.current.line
            )
        return self.advance()

    def expect_ident(self) -> Token:
        if self.current.kind != "ident":
            raise CompileError(
                f"expected identifier, found {self.current.text!r}", self.current.line
            )
        return self.advance()

    # -- types ----------------------------------------------------------------

    def at_type(self) -> bool:
        return self.current.text in ("int", "char", "void", "struct")

    def parse_base_type(self) -> Type:
        token = self.advance()
        if token.text == "int":
            base = INT
        elif token.text == "char":
            base = CHAR
        elif token.text == "void":
            base = VOID
        elif token.text == "struct":
            name = self.expect_ident().text
            base = Type("struct", struct_name=name)
        else:
            raise CompileError(f"expected type, found {token.text!r}", token.line)
        while self.accept("*"):
            base = pointer_to(base)
        return base

    # -- top level --------------------------------------------------------------

    def parse_program(self) -> Program:
        program = Program()
        while self.current.kind != "eof":
            if self.check("struct") and self.tokens[self.position + 2].text == "{":
                self._parse_struct(program)
                continue
            base = self.parse_base_type()
            name = self.expect_ident().text
            if self.check("("):
                program.functions.append(self._parse_function(base, name))
            else:
                program.globals.append(self._parse_global(base, name))
        return program

    def _parse_struct(self, program: Program) -> None:
        line = self.current.line
        self.expect("struct")
        name = self.expect_ident().text
        self.expect("{")
        layout = StructLayout(name)
        offset = 0
        while not self.accept("}"):
            field_type = self.parse_base_type()
            field_name = self.expect_ident().text
            if self.accept("["):
                count = self._constant()
                self.expect("]")
                field_type = array_of(field_type, count)
            self.expect(";")
            size = self._type_size(field_type, program)
            align = 1 if self._element_kind(field_type) == "char" else 8
            offset = (offset + align - 1) & ~(align - 1)
            layout.fields.append((field_name, field_type, offset))
            offset += size
        layout.size = (offset + 7) & ~7
        self.expect(";")
        if name in program.structs:
            raise CompileError(f"duplicate struct {name!r}", line)
        program.structs[name] = layout

    def _element_kind(self, field_type: Type) -> str:
        if field_type.kind == "array":
            return field_type.elem.kind
        return field_type.kind

    def _type_size(self, field_type: Type, program: Program) -> int:
        if field_type.kind == "struct":
            layout = program.structs.get(field_type.struct_name)
            if layout is None:
                raise CompileError(
                    f"unknown struct {field_type.struct_name!r}", self.current.line
                )
            return layout.size
        if field_type.kind == "array" and field_type.elem.kind == "struct":
            layout = program.structs.get(field_type.elem.struct_name)
            if layout is None:
                raise CompileError(
                    f"unknown struct {field_type.elem.struct_name!r}", self.current.line
                )
            return layout.size * field_type.count
        return field_type.size

    def _parse_global(self, base: Type, name: str) -> GlobalDecl:
        line = self.current.line
        declared = base
        if self.accept("["):
            count = self._constant()
            self.expect("]")
            declared = array_of(base, count)
        init_words: Optional[List[int]] = None
        if self.accept("="):
            if self.accept("{"):
                init_words = []
                while not self.accept("}"):
                    init_words.append(self._signed_constant())
                    if not self.check("}"):
                        self.expect(",")
            else:
                init_words = [self._signed_constant()]
        self.expect(";")
        return GlobalDecl(name, declared, init_words, line)

    def _parse_function(self, return_type: Type, name: str) -> FunctionDecl:
        line = self.current.line
        self.expect("(")
        params: List[Tuple[str, Type]] = []
        if not self.check(")"):
            while True:
                if self.check("void") and self.tokens[self.position + 1].text == ")":
                    self.advance()
                    break
                param_type = self.parse_base_type()
                param_name = self.expect_ident().text
                params.append((param_name, param_type))
                if not self.accept(","):
                    break
        self.expect(")")
        body = self._parse_block()
        return FunctionDecl(name, return_type, params, body, line)

    # -- statements ------------------------------------------------------------

    def _parse_block(self) -> List[Stmt]:
        self.expect("{")
        body: List[Stmt] = []
        while not self.accept("}"):
            body.append(self.parse_statement())
        return body

    def parse_statement(self) -> Stmt:
        line = self.current.line
        if self.check("{"):
            return BlockStmt(line, self._parse_block())
        if self.at_type():
            return self._parse_decl()
        if self.accept("if"):
            self.expect("(")
            cond = self.parse_expression()
            self.expect(")")
            then_body = self._body_or_single()
            else_body: List[Stmt] = []
            if self.accept("else"):
                else_body = self._body_or_single()
            return IfStmt(line, cond, then_body, else_body)
        if self.accept("while"):
            self.expect("(")
            cond = self.parse_expression()
            self.expect(")")
            return WhileStmt(line, cond, self._body_or_single())
        if self.accept("for"):
            self.expect("(")
            init: Optional[Stmt] = None
            if not self.check(";"):
                init = self._parse_decl() if self.at_type() else self._expr_stmt_noterm()
                if isinstance(init, ExprStmt):
                    self.expect(";")
            else:
                self.expect(";")
            cond = None if self.check(";") else self.parse_expression()
            self.expect(";")
            step = None if self.check(")") else self.parse_expression()
            self.expect(")")
            return ForStmt(line, init, cond, step, self._body_or_single())
        if self.accept("return"):
            value = None if self.check(";") else self.parse_expression()
            self.expect(";")
            return ReturnStmt(line, value)
        if self.accept("break"):
            self.expect(";")
            return BreakStmt(line)
        if self.accept("continue"):
            self.expect(";")
            return ContinueStmt(line)
        statement = self._expr_stmt_noterm()
        self.expect(";")
        return statement

    def _expr_stmt_noterm(self) -> ExprStmt:
        line = self.current.line
        return ExprStmt(line, self.parse_expression())

    def _body_or_single(self) -> List[Stmt]:
        if self.check("{"):
            return self._parse_block()
        return [self.parse_statement()]

    def _parse_decl(self) -> DeclStmt:
        line = self.current.line
        base = self.parse_base_type()
        name = self.expect_ident().text
        declared = base
        if self.accept("["):
            count = self._constant()
            self.expect("]")
            declared = array_of(base, count)
        init: Optional[Expr] = None
        if self.accept("="):
            init = self.parse_expression()
        # 'for' init declarations consume their own ';' here.
        self.expect(";")
        return DeclStmt(line, name, declared, init)

    # -- expressions ----------------------------------------------------------

    def parse_expression(self) -> Expr:
        return self._parse_assignment()

    _COMPOUND_OPS = {
        "+=": "+", "-=": "-", "*=": "*", "/=": "/", "%=": "%",
        "&=": "&", "|=": "|", "^=": "^", "<<=": "<<", ">>=": ">>",
    }

    def _parse_assignment(self) -> Expr:
        left = self._parse_binary(0)
        if self.check("="):
            line = self.current.line
            self.advance()
            value = self._parse_assignment()
            return AssignExpr(line, left, value)
        if self.current.kind == "op" and self.current.text in self._COMPOUND_OPS:
            # Desugar: `x op= v` -> `x = x op v`.  The target expression
            # is evaluated twice; like C, keep lvalues side-effect free.
            token = self.advance()
            value = self._parse_assignment()
            core = self._COMPOUND_OPS[token.text]
            return AssignExpr(
                token.line, left, BinaryExpr(token.line, core, left, value)
            )
        return left

    def _parse_binary(self, level: int) -> Expr:
        if level >= len(_BINARY_LEVELS):
            return self._parse_unary()
        left = self._parse_binary(level + 1)
        while self.current.kind == "op" and self.current.text in _BINARY_LEVELS[level]:
            op = self.advance()
            right = self._parse_binary(level + 1)
            left = BinaryExpr(op.line, op.text, left, right)
        return left

    def _parse_unary(self) -> Expr:
        token = self.current
        if token.kind == "op" and token.text in ("++", "--"):
            # Prefix increment/decrement: `++x` -> `x = x + 1`.
            self.advance()
            operand = self._parse_unary()
            op = "+" if token.text == "++" else "-"
            return AssignExpr(
                token.line, operand,
                BinaryExpr(token.line, op, operand, NumberExpr(token.line, 1)),
            )
        if token.kind == "op" and token.text in ("-", "!", "~"):
            self.advance()
            return UnaryExpr(token.line, token.text, self._parse_unary())
        if token.kind == "op" and token.text == "*":
            self.advance()
            return DerefExpr(token.line, self._parse_unary())
        if token.kind == "op" and token.text == "&":
            self.advance()
            return AddrOfExpr(token.line, self._parse_unary())
        return self._parse_postfix()

    def _parse_postfix(self) -> Expr:
        expr = self._parse_primary()
        while True:
            if self.current.kind == "op" and self.current.text in ("++", "--"):
                # Postfix increment/decrement, desugared with *pre*
                # semantics (the expression value is the new value);
                # use it in statement position, as all workloads do.
                token = self.advance()
                op = "+" if token.text == "++" else "-"
                expr = AssignExpr(
                    token.line, expr,
                    BinaryExpr(token.line, op, expr, NumberExpr(token.line, 1)),
                )
                continue
            if self.accept("["):
                index = self.parse_expression()
                self.expect("]")
                expr = IndexExpr(self.current.line, expr, index)
            elif self.accept("."):
                member = self.expect_ident().text
                expr = MemberExpr(self.current.line, expr, member, arrow=False)
            elif self.accept("->"):
                member = self.expect_ident().text
                expr = MemberExpr(self.current.line, expr, member, arrow=True)
            else:
                return expr

    def _parse_primary(self) -> Expr:
        token = self.current
        if token.kind == "num":
            self.advance()
            return NumberExpr(token.line, token.value)
        if token.kind == "ident":
            self.advance()
            if self.check("("):
                self.advance()
                args: List[Expr] = []
                if not self.check(")"):
                    while True:
                        args.append(self.parse_expression())
                        if not self.accept(","):
                            break
                self.expect(")")
                return CallExpr(token.line, token.text, args)
            return VarExpr(token.line, token.text)
        if self.accept("("):
            expr = self.parse_expression()
            self.expect(")")
            return expr
        raise CompileError(f"unexpected token {token.text!r}", token.line)

    # -- constants --------------------------------------------------------------

    def _constant(self) -> int:
        token = self.advance()
        if token.kind != "num":
            raise CompileError(f"expected constant, found {token.text!r}", token.line)
        return token.value

    def _signed_constant(self) -> int:
        negative = self.accept("-")
        value = self._constant()
        return -value if negative else value


def parse_source(source: str) -> Program:
    return Parser(source).parse_program()
