"""Peephole optimization: redundant local-load/move elimination.

A minimal -O1-style pass over straight-line code.  Registers are tagged
with the frame slot whose value they hold; a reload of a slot already in
the register, or a reg-reg move whose destination already holds the same
value, is deleted.  This is what lets consecutive field stores share one
base register — producing exactly the ``disp(%reg)`` access runs that
make the paper's check batching and merging effective (Fig. 6/7).

Soundness rules:

- tracking resets at labels, control transfers and calls;
- a register is invalidated whenever anything writes it;
- a frame slot is invalidated when a new value is stored to it (and the
  storing register picks up the slot's tag);
- slots whose address is taken (``lea`` of a local) are never tracked —
  stores through pointers could alias them.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.isa.assembler import Item
from repro.isa.instructions import Instruction
from repro.isa.opcodes import Opcode
from repro.isa.operands import Label, Reg
from repro.isa.registers import Register

#: Tag: ('local', slot_offset) — the register holds that slot's value.
Tag = Tuple[str, int]


def eliminate_redundant_local_ops(
    items: List[Item],
    fixups: List[Tuple[Instruction, int, int]],
) -> Tuple[List[Item], List[Tuple[Instruction, int, int]]]:
    """Run the pass; returns filtered (items, fixups)."""
    slot_of: Dict[int, Tuple[int, Opcode]] = {
        id(instruction): (slot, instruction.opcode)
        for instruction, slot, _depth in fixups
    }
    # Slots whose address escapes are untrackable.
    escaped = {
        slot for instruction, slot, _depth in fixups
        if instruction.opcode is Opcode.LEA
    }

    tags: Dict[Register, Tag] = {}
    dead: set = set()

    def reset() -> None:
        tags.clear()

    def invalidate_register(register: Register) -> None:
        tags.pop(register, None)

    def invalidate_slot(slot: int) -> None:
        for register in [r for r, tag in tags.items() if tag == ("local", slot)]:
            del tags[register]

    for item in items:
        if isinstance(item, Label):
            reset()
            continue
        instruction = item
        opcode = instruction.opcode
        if instruction.is_terminator or opcode is Opcode.RTCALL:
            reset()
            continue
        local = slot_of.get(id(instruction))
        if local is not None:
            slot, _op = local
            if opcode is Opcode.MOV and isinstance(instruction.operands[0], Reg):
                # Local load: reg <- [slot].
                register = instruction.operands[0].reg
                if (
                    slot not in escaped
                    and instruction.size == 8
                    and tags.get(register) == ("local", slot)
                ):
                    dead.add(id(instruction))
                    continue
                for written in instruction.regs_written():
                    invalidate_register(written)
                if slot not in escaped and instruction.size == 8:
                    tags[register] = ("local", slot)
                continue
            if opcode is Opcode.MOV and isinstance(instruction.operands[1], Reg):
                # Local store: [slot] <- reg.
                register = instruction.operands[1].reg
                invalidate_slot(slot)
                if slot not in escaped and instruction.size == 8:
                    tags[register] = ("local", slot)
                continue
            # LEA of a local or odd shapes: fall through to generic handling.
        if (
            opcode is Opcode.MOV
            and len(instruction.operands) == 2
            and isinstance(instruction.operands[0], Reg)
            and isinstance(instruction.operands[1], Reg)
            and instruction.size == 8
        ):
            destination = instruction.operands[0].reg
            source = instruction.operands[1].reg
            source_tag = tags.get(source)
            if source_tag is not None and tags.get(destination) == source_tag:
                dead.add(id(instruction))
                continue
            invalidate_register(destination)
            if source_tag is not None:
                tags[destination] = source_tag
            continue
        for written in instruction.regs_written():
            invalidate_register(written)

    new_items = [
        item for item in items
        if isinstance(item, Label) or id(item) not in dead
    ]
    new_fixups = [
        entry for entry in fixups if id(entry[0]) not in dead
    ]
    return new_items, new_fixups
