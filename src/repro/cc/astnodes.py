"""MiniC abstract syntax tree and type model."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


# ---------------------------------------------------------------------------
# Types.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Type:
    """A MiniC type: int, char, void, pointer, array or struct."""

    kind: str  # 'int' | 'char' | 'void' | 'ptr' | 'array' | 'struct'
    elem: Optional["Type"] = None  # ptr/array element
    count: int = 0  # array length
    struct_name: str = ""

    @property
    def size(self) -> int:
        if self.kind == "int":
            return 8
        if self.kind == "char":
            return 1
        if self.kind == "ptr":
            return 8
        if self.kind == "array":
            return self.elem.size * self.count
        if self.kind == "void":
            return 0
        raise ValueError(f"size of {self.kind} requires struct layout")

    @property
    def is_scalar(self) -> bool:
        return self.kind in ("int", "char", "ptr")

    def __str__(self) -> str:
        if self.kind == "ptr":
            return f"{self.elem}*"
        if self.kind == "array":
            return f"{self.elem}[{self.count}]"
        if self.kind == "struct":
            return f"struct {self.struct_name}"
        return self.kind


INT = Type("int")
CHAR = Type("char")
VOID = Type("void")


def pointer_to(elem: Type) -> Type:
    return Type("ptr", elem=elem)


def array_of(elem: Type, count: int) -> Type:
    return Type("array", elem=elem, count=count)


@dataclass
class StructLayout:
    """Resolved field offsets and total size of a struct."""

    name: str
    fields: List[Tuple[str, Type, int]] = field(default_factory=list)  # (name, type, offset)
    size: int = 0

    def field_of(self, name: str) -> Optional[Tuple[str, Type, int]]:
        for entry in self.fields:
            if entry[0] == name:
                return entry
        return None


# ---------------------------------------------------------------------------
# Expressions.
# ---------------------------------------------------------------------------


@dataclass
class Expr:
    line: int = 0


@dataclass
class NumberExpr(Expr):
    value: int = 0


@dataclass
class VarExpr(Expr):
    name: str = ""


@dataclass
class UnaryExpr(Expr):
    op: str = ""
    operand: Expr = None


@dataclass
class BinaryExpr(Expr):
    op: str = ""
    left: Expr = None
    right: Expr = None


@dataclass
class AssignExpr(Expr):
    target: Expr = None
    value: Expr = None


@dataclass
class IndexExpr(Expr):
    base: Expr = None
    index: Expr = None


@dataclass
class MemberExpr(Expr):
    base: Expr = None
    member: str = ""
    arrow: bool = False  # True for '->', False for '.'


@dataclass
class CallExpr(Expr):
    name: str = ""
    args: List[Expr] = field(default_factory=list)


@dataclass
class DerefExpr(Expr):
    operand: Expr = None


@dataclass
class AddrOfExpr(Expr):
    operand: Expr = None


# ---------------------------------------------------------------------------
# Statements.
# ---------------------------------------------------------------------------


@dataclass
class Stmt:
    line: int = 0


@dataclass
class DeclStmt(Stmt):
    name: str = ""
    type: Type = None
    init: Optional[Expr] = None


@dataclass
class ExprStmt(Stmt):
    expr: Expr = None


@dataclass
class IfStmt(Stmt):
    cond: Expr = None
    then_body: List[Stmt] = field(default_factory=list)
    else_body: List[Stmt] = field(default_factory=list)


@dataclass
class WhileStmt(Stmt):
    cond: Expr = None
    body: List[Stmt] = field(default_factory=list)


@dataclass
class ForStmt(Stmt):
    init: Optional[Stmt] = None
    cond: Optional[Expr] = None
    step: Optional[Expr] = None
    body: List[Stmt] = field(default_factory=list)


@dataclass
class ReturnStmt(Stmt):
    value: Optional[Expr] = None


@dataclass
class BreakStmt(Stmt):
    pass


@dataclass
class ContinueStmt(Stmt):
    pass


@dataclass
class BlockStmt(Stmt):
    body: List[Stmt] = field(default_factory=list)


# ---------------------------------------------------------------------------
# Top level.
# ---------------------------------------------------------------------------


@dataclass
class GlobalDecl:
    name: str
    type: Type
    init_words: Optional[List[int]] = None
    line: int = 0


@dataclass
class FunctionDecl:
    name: str
    return_type: Type
    params: List[Tuple[str, Type]]
    body: List[Stmt]
    line: int = 0


@dataclass
class Program:
    structs: Dict[str, StructLayout] = field(default_factory=dict)
    globals: List[GlobalDecl] = field(default_factory=list)
    functions: List[FunctionDecl] = field(default_factory=list)
