"""MiniC lexer."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.errors import CompileError

KEYWORDS = {
    "int",
    "char",
    "void",
    "struct",
    "if",
    "else",
    "while",
    "for",
    "return",
    "break",
    "continue",
}

#: Multi-character operators, longest first.
OPERATORS = [
    "<<=", ">>=",
    "++", "--", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
    "<<", ">>", "<=", ">=", "==", "!=", "&&", "||", "->",
    "+", "-", "*", "/", "%", "<", ">", "=", "!", "&", "|", "^", "~",
    "(", ")", "{", "}", "[", "]", ";", ",", ".",
]


@dataclass(frozen=True)
class Token:
    kind: str  # 'num', 'ident', 'keyword', 'op', 'eof'
    text: str
    line: int

    @property
    def value(self) -> int:
        return int(self.text, 0)


def tokenize(source: str) -> List[Token]:
    tokens: List[Token] = []
    line = 1
    index = 0
    length = len(source)
    while index < length:
        char = source[index]
        if char == "\n":
            line += 1
            index += 1
            continue
        if char in " \t\r":
            index += 1
            continue
        if source.startswith("//", index):
            end = source.find("\n", index)
            index = length if end < 0 else end
            continue
        if source.startswith("/*", index):
            end = source.find("*/", index)
            if end < 0:
                raise CompileError("unterminated comment", line)
            line += source.count("\n", index, end)
            index = end + 2
            continue
        if char.isdigit():
            start = index
            if source.startswith("0x", index) or source.startswith("0X", index):
                index += 2
                while index < length and source[index] in "0123456789abcdefABCDEF":
                    index += 1
            else:
                while index < length and source[index].isdigit():
                    index += 1
            tokens.append(Token("num", source[start:index], line))
            continue
        if char.isalpha() or char == "_":
            start = index
            while index < length and (source[index].isalnum() or source[index] == "_"):
                index += 1
            text = source[start:index]
            kind = "keyword" if text in KEYWORDS else "ident"
            tokens.append(Token(kind, text, line))
            continue
        if char == "'":
            if index + 2 < length and source[index + 2] == "'":
                tokens.append(Token("num", str(ord(source[index + 1])), line))
                index += 3
                continue
            if source.startswith("'\\n'", index):
                tokens.append(Token("num", str(ord("\n")), line))
                index += 4
                continue
            if source.startswith("'\\0'", index):
                tokens.append(Token("num", "0", line))
                index += 4
                continue
            raise CompileError("malformed character literal", line)
        for operator in OPERATORS:
            if source.startswith(operator, index):
                tokens.append(Token("op", operator, line))
                index += len(operator)
                break
        else:
            raise CompileError(f"unexpected character {char!r}", line)
    tokens.append(Token("eof", "", line))
    return tokens
