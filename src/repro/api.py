"""The stable high-level facade over the RedFat pipeline.

Three verbs cover the Fig. 5 workflow end to end::

    import repro.api as redfat

    result = redfat.harden("prog.c", options="fully")      # or a Binary
    report = redfat.profile("prog.melf", args=[10])        # allow-list
    outcome = redfat.run(result.binary, args=[10], runtime="redfat")

Every entry point accepts a path (``.c`` MiniC source is compiled on the
fly, anything else is loaded as a binary image), a
:class:`~repro.binfmt.binary.Binary`, or a
:class:`~repro.cc.compiler.CompiledProgram`, plus an optional
:class:`~repro.telemetry.Telemetry` hub that the pipeline fills with
per-phase spans and Table-1 counters.  The CLI, the examples, and the
bench harness are all thin layers over this module — downstream code
should prefer it to reaching into ``repro.core`` directly.
"""

from __future__ import annotations

from pathlib import Path
from typing import TYPE_CHECKING, List, Optional, Sequence, Union

if TYPE_CHECKING:  # the farm imports this module; keep the cycle lazy
    from repro.farm.cache import ArtifactCache
    from repro.farm.scheduler import FarmReport

from repro.binfmt.binary import Binary
from repro.cc import CompiledProgram, compile_source
from repro.core import AllowList, Profiler, RedFat, RedFatOptions
from repro.core.profiler import ProfileReport
from repro.core.redfat_tool import HardenResult
from repro.runtime.redfat import RedFatRuntime
from repro.telemetry.hub import Telemetry, coerce
from repro.vm.loader import RunResult, load_binary
from repro.vm.runtime_iface import RuntimeEnvironment

#: Anything the facade accepts as a program.
Target = Union[str, Path, Binary, CompiledProgram]

#: Options may be given as an instance or a preset name (see
#: :meth:`RedFatOptions.preset`).
OptionsLike = Union[RedFatOptions, str, None]


def load(target: Target, pic: bool = False) -> CompiledProgram:
    """Resolve *target* to a :class:`CompiledProgram`.

    ``.c`` paths are compiled (MiniC); other paths are loaded as binary
    images; ``Binary``/``CompiledProgram`` instances pass through.  A
    bare ``Binary`` is wrapped with the compiler's argument-block
    convention so :func:`run` can still poke workload inputs.
    """
    if isinstance(target, CompiledProgram):
        return target
    if isinstance(target, Binary):
        return _wrap_binary(target)
    path = Path(target)
    if path.suffix == ".c":
        return compile_source(path.read_text(), pic=pic)
    return _wrap_binary(Binary.load(str(path)))


def _wrap_binary(binary: Binary) -> CompiledProgram:
    from repro.binfmt.builder import BSS_BASE

    return CompiledProgram(binary=binary, args_address=BSS_BASE)


def resolve_options(options: OptionsLike, **overrides) -> RedFatOptions:
    """Normalize *options*: None -> defaults, str -> preset lookup."""
    if options is None:
        return RedFatOptions(**overrides) if overrides else RedFatOptions()
    if isinstance(options, str):
        return RedFatOptions.preset(options, **overrides)
    if overrides:
        return options.with_(**overrides)
    return options


def harden(
    target: Target,
    options: OptionsLike = None,
    telemetry: Optional[Telemetry] = None,
    allowlist: Optional[AllowList] = None,
    output: Optional[Union[str, Path]] = None,
) -> HardenResult:
    """Instrument *target* and return the :class:`HardenResult`.

    *options* is a :class:`RedFatOptions`, a preset name (``"fully"``,
    ``"unoptimized"``, ...), or None for the defaults; *allowlist*
    overrides the options' allow-list when given; *output* additionally
    saves the hardened image to disk.
    """
    program = load(target)
    opts = resolve_options(options)
    if allowlist is not None:
        opts = opts.with_(allowlist=allowlist)
    tele = coerce(telemetry)
    result = RedFat(opts, telemetry=tele).instrument(program.binary)
    tele.record_stats("harden", result)
    if output is not None:
        result.binary.save(str(output))
    return result


def harden_many(
    targets: Sequence[Target],
    options: OptionsLike = None,
    jobs: int = 0,
    cache: Optional["ArtifactCache"] = None,
    cache_dir: Optional[Union[str, Path]] = None,
    telemetry: Optional[Telemetry] = None,
) -> "FarmReport":
    """Harden a batch of targets through the farm (see :mod:`repro.farm`).

    Byte-identical inputs under equal options are served from the
    content-addressed artifact cache; *jobs* >= 2 fans the rest out over
    a crash-isolated worker pool.  Per-job failures land in their
    :class:`~repro.farm.scheduler.JobOutcome` — the batch never raises
    for one sick input.  Pass a shared *cache* (or *cache_dir*) to reuse
    artifacts across calls and processes.
    """
    from repro.farm import Farm

    farm = Farm(jobs=jobs, cache=cache, cache_dir=cache_dir,
                telemetry=telemetry)
    try:
        return farm.harden_many(targets, options=options)
    finally:
        farm.close()


def serve(
    state_dir: Union[str, Path],
    host: str = "127.0.0.1",
    port: int = 0,
    telemetry: Optional[Telemetry] = None,
    **config_overrides,
):
    """Start an in-process hardening service and return it (started).

    The returned :class:`~repro.service.daemon.HardeningService` is
    listening (``service.port``), has replayed its journal, and accepts
    HTTP submissions; call ``.stop()`` (drains by default) when done.
    ``redfat serve`` is the foreground CLI wrapper over the same
    machinery.  Extra keyword arguments become
    :class:`~repro.service.daemon.ServiceConfig` fields.
    """
    from repro.service.daemon import HardeningService, ServiceConfig

    config = ServiceConfig(state_dir=state_dir, host=host, port=port,
                           **config_overrides)
    return HardeningService(config, telemetry=telemetry).start()


def audit(
    target: Target,
    telemetry: Optional[Telemetry] = None,
    output: Optional[Union[str, Path]] = None,
):
    """Statically audit *target* for memory errors (``redfat audit``).

    No execution happens: the interprocedural value-range facts are
    walked for must/may out-of-bounds accesses, double-frees and frees
    of non-heap pointers.  Returns the
    :class:`~repro.analysis.audit.AuditReport`; *output* additionally
    writes the schema-validated JSON findings document.
    """
    from repro.analysis.audit import audit as _audit

    return _audit(target, telemetry=telemetry, output=output)


def hunt(
    entries=None,
    corpus: str = "cve",
    telemetry: Optional[Telemetry] = None,
    output: Optional[Union[str, Path]] = None,
    **config_overrides,
):
    """Run a coverage-guided vulnerability hunt (``redfat hunt``).

    *entries* is a sequence of :class:`~repro.hunt.corpus.HuntEntry`
    targets; when omitted, *corpus* selects them from the named
    workload registry (``"cve"``, ``"juliet"``, ``"synthetic"``,
    ``"all"``, or a comma list of case names).  Extra keyword arguments
    become :class:`~repro.hunt.loop.HuntConfig` fields (``budget``,
    ``fuel``, ``seed``, ``presets``, ``runtimes``, ``jsonl_path``,
    ``regressions_path``, ...).  Returns the
    :class:`~repro.hunt.report.HuntReport`; *output* additionally
    writes the schema-validated JSON document.
    """
    from repro.hunt.loop import HuntConfig, run_hunt

    config = HuntConfig(corpus=corpus, **config_overrides)
    report = run_hunt(entries=entries, config=config, telemetry=telemetry)
    if output is not None:
        errors = report.write_json(output)
        if errors:
            raise ValueError(
                f"hunt report failed schema validation: {errors[0]}"
            )
    return report


def profile(
    target: Target,
    args: Sequence[int] = (),
    options: OptionsLike = None,
    telemetry: Optional[Telemetry] = None,
    output: Optional[Union[str, Path]] = None,
) -> ProfileReport:
    """Run the Fig. 5 profiling phase and return the report.

    The profile binary executes once with *args* poked into the guest's
    input block; ``report.allowlist`` holds the always-passing sites.
    *output* additionally saves the allow-list to disk.
    """
    program = load(target)
    opts = resolve_options(options)
    profiler = Profiler(opts, telemetry=telemetry)

    def execute(binary: Binary, runtime: RedFatRuntime) -> None:
        program.run(args=args, binary=binary, runtime=runtime,
                    telemetry=telemetry)

    report = profiler.profile(program.binary, executions=[execute])
    if output is not None:
        report.allowlist.save(str(output))
    return report


def run(
    target: Target,
    args: Sequence[int] = (),
    runtime: Union[RuntimeEnvironment, str, None] = None,
    mode: str = "abort",
    max_instructions: int = 2_000_000_000,
    telemetry: Optional[Telemetry] = None,
    engine: Optional[str] = None,
    seed: int = 1,
    preload: Optional[str] = None,
) -> RunResult:
    """Execute *target* on the VM and return the :class:`RunResult`.

    *runtime* is an environment instance or a registry spec — a name
    such as ``"glibc"`` (default, unprotected), ``"redfat"``, any
    backend from the allocator zoo (``"s2malloc"``, ``"mesh"``, ...),
    or ``"name:key=val,..."`` with per-backend options (see
    :mod:`repro.runtime.registry`).  *mode* selects abort-on-error vs.
    log-and-continue and *seed* feeds the randomized backends.
    *engine* forces the VM's execution tier — ``"trace"`` (default,
    the full three-tier JIT; see :mod:`repro.vm.trace`),
    ``"superblock"`` (the superblock engine with tracing disabled) or
    ``"single-step"`` (the reference loop; see
    :mod:`repro.vm.superblock`) — for this run only; results are
    identical in every tier.

    ``preload=`` is the deprecated pre-registry spelling of
    ``runtime=`` and emits a :class:`DeprecationWarning`.
    """
    import warnings

    from repro.runtime import registry
    from repro.vm.superblock import engine_override

    if preload is not None:
        warnings.warn(
            "run(preload=...) is deprecated; pass runtime=<registry spec>",
            DeprecationWarning, stacklevel=2,
        )
        if runtime is None:
            runtime = preload
    program = load(target)
    environment = registry.create(
        runtime if runtime is not None else "glibc",
        mode=mode, seed=seed, telemetry=telemetry,
    )
    if engine is None:
        return program.run(
            args=args, runtime=environment,
            max_instructions=max_instructions, telemetry=telemetry,
        )
    with engine_override(engine):
        return program.run(
            args=args, runtime=environment,
            max_instructions=max_instructions, telemetry=telemetry,
        )


__all__ = [
    "Target",
    "OptionsLike",
    "load",
    "resolve_options",
    "harden",
    "harden_many",
    "audit",
    "hunt",
    "profile",
    "run",
    "serve",
]
