"""A generic worklist fixpoint solver over :class:`BlockGraph` nodes.

One engine serves every client analysis in this package: forward
(provenance, dominators) and backward (liveness) problems differ only in
which edge map drives propagation and which side of the block the
boundary fact seeds.  A client supplies:

``boundary``
    The fact at the entry (forward) / exit (backward) of root nodes —
    the most conservative assumption about control arriving from outside
    the recovered edge set.

``transfer(node, fact)``
    The whole-block transfer function, applied to the input-side fact.

``join(a, b)``
    The lattice join.  ``None`` is the universal bottom (unreachable /
    not-yet-computed); the solver handles it, clients never see it.

``edge(source, sink, fact)``
    Optional per-edge adjustment of the propagated fact (e.g. modelling
    an unknown callee's clobbers on a call fall-through edge).

The solver is monotone-framework standard: seed roots, iterate until no
input fact changes.  A hard iteration budget turns an accidental
non-monotone transfer into a typed error instead of a hang, and is the
hook for the ``analysis.fixpoint`` fault point.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Optional

from repro.errors import InstrumentationError
from repro.faults.injector import fault_point
from repro.analysis.graph import BlockGraph

#: Iterations-per-node floor; the effective budget also scales with the
#: graph (dominator sets shrink element-by-element along long chains).
#: Exceeding it means a broken (non-monotone or infinite-chain) transfer.
MAX_VISITS_PER_NODE = 1024


class FixpointDiverged(InstrumentationError):
    """The solver exhausted its iteration budget (or was fault-injected)."""


def solve(
    graph: BlockGraph,
    *,
    direction: str,
    boundary: object,
    transfer: Callable[[int, object], object],
    join: Callable[[object, object], object],
    edge: Optional[Callable[[int, int, object], object]] = None,
    roots: Optional[Iterable[int]] = None,
    boundaries: Optional[Dict[int, object]] = None,
    budget: Optional[int] = None,
) -> Dict[int, object]:
    """Run the worklist to fixpoint; return the input-side fact per node.

    *direction* is ``"forward"`` (facts at block entry, propagated along
    successor edges) or ``"backward"`` (facts at block exit, propagated
    along predecessor edges).  *roots* overrides the graph's root set —
    backward problems seed exit-less blocks instead of entry blocks.
    *boundaries* overrides the seed fact per node (nodes listed there are
    added to the root set; others keep *boundary*) — the interprocedural
    pass uses it to give a function entry its call-site fact while other
    roots stay at the conservative boundary.  *budget* overrides the
    iterations-per-node limit (tests pin it to exercise the divergence
    path deterministically).
    """
    if direction == "forward":
        out_edges = graph.succs
    elif direction == "backward":
        out_edges = graph.preds
    else:
        raise ValueError(f"unknown direction {direction!r}")
    if fault_point("analysis.fixpoint"):
        raise FixpointDiverged("injected fixpoint divergence")

    root_set = set(graph.roots if roots is None else roots)
    if boundaries:
        root_set |= set(boundaries)
    facts: Dict[int, object] = {}
    for node in root_set:
        if boundaries and node in boundaries:
            facts[node] = boundaries[node]
        else:
            facts[node] = boundary

    worklist = sorted(root_set)
    queued = set(worklist)
    visits: Dict[int, int] = {}
    if budget is None:
        budget = max(MAX_VISITS_PER_NODE, 2 * len(graph.blocks) + 8)
    while worklist:
        node = worklist.pop()
        queued.discard(node)
        visits[node] = visits.get(node, 0) + 1
        if visits[node] > budget:
            raise FixpointDiverged(
                f"block {node:#x} revisited {visits[node]} times; "
                "transfer function is not monotone"
            )
        in_fact = facts.get(node)
        if in_fact is None:
            continue
        out_fact = transfer(node, in_fact)
        for sink in out_edges.get(node, ()):
            propagated = edge(node, sink, out_fact) if edge else out_fact
            current = facts.get(sink)
            merged = propagated if current is None else join(current, propagated)
            if merged != current:
                facts[sink] = merged
                if sink not in queued:
                    worklist.append(sink)
                    queued.add(sink)
    return facts
