"""Dominators and dominated-redundancy removal for checked accesses.

``dom(b)`` — the blocks on *every* path from a root to ``b`` — is the
classic forward dataflow with intersection as the join, so it runs on
the same worklist solver as the other clients (facts are frozensets of
block start addresses; the boundary fact at a root is the root itself).

Redundancy rule (paper §6's "dominance" elimination): a checked access
``S`` is *redundant* when an already-checked access ``D`` exists with

- the identical memory operand (base, index, scale, displacement) and
  access width,
- ``D`` dominating ``S`` (same block and earlier, or ``dom(S.block)``
  containing ``D.block``), and
- no instruction between ``D`` and ``S`` — on *any* path — writing the
  operand's registers or transferring to a callee (``call``/``callr``/
  ``rtcall``: a ``free`` on the path could change the object's state
  between check and access).

Soundness argument: block entry always happens at the block start (every
join point is a leader), so re-entering ``D``'s block re-executes ``D``.
Hence the segment of any execution between the *last* execution of ``D``
and the next execution of ``S`` traverses only: ``D``'s suffix after
``D``, complete intermediate blocks (the reachable-between set), and
``S``'s prefix before ``S``.  If all three are clobber- and call-free,
the operand evaluates to the same address at ``S`` as at ``D`` and the
object's allocation state is unchanged — ``D``'s check already decided
exactly what ``S``'s check would decide.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Set

from repro.isa.instructions import Instruction
from repro.isa.opcodes import Opcode
from repro.isa.operands import Imm
from repro.analysis.graph import CALL_OPCODES, BlockGraph
from repro.analysis import solver
from repro.vm.runtime_iface import Service

#: Runtime services that can neither free nor move a heap object: a
#: ``rtcall`` to one of these behaves like a plain instruction that
#: clobbers the caller-saved registers.  ``free``/``realloc`` (and any
#: unknown service id) may change the object's allocation state between
#: check and access, so they always clobber.
_SAFE_SERVICES = frozenset({
    int(Service.EXIT),
    int(Service.MALLOC),
    int(Service.CALLOC),
    int(Service.PRINT_INT),
    int(Service.PRINT_CHAR),
    int(Service.PROFILE),
})


def compute_dominators(graph: BlockGraph) -> Dict[int, FrozenSet[int]]:
    """``block start -> frozenset of dominating block starts`` (reflexive).

    Multiple roots are handled by giving every root the boundary fact
    ``{root}`` — equivalent to the textbook virtual-root construction.
    Unreachable blocks are absent from the result (treat as undominated).
    """
    facts = solver.solve(
        graph,
        direction="forward",
        boundary=frozenset(),
        transfer=lambda node, dom: dom | {node},
        join=lambda a, b: a & b,
    )
    return {node: dom | {node} for node, dom in facts.items()}


def _clobbers(instruction: Instruction, registers: FrozenSet) -> bool:
    if instruction.opcode is Opcode.RTCALL:
        # The runtime service is a known quantity, unlike an arbitrary
        # callee: services that cannot free/move heap objects only
        # clobber the caller-saved registers (regs_written covers them).
        operands = instruction.operands
        if (operands and isinstance(operands[0], Imm)
                and operands[0].value in _SAFE_SERVICES):
            return bool(instruction.regs_written() & registers)
        return True  # free/realloc (or unknown): allocation state may change
    if instruction.opcode in CALL_OPCODES:
        return True  # a callee may free() the object between check and use
    return bool(instruction.regs_written() & registers)


def _segment_clean(instructions: Iterable[Instruction],
                   registers: FrozenSet) -> bool:
    return not any(_clobbers(instruction, registers) for instruction in instructions)


def find_dominated_redundant(
    graph: BlockGraph,
    dominators: Dict[int, FrozenSet[int]],
    sites: List,
) -> Set[int]:
    """Return the addresses of sites redundant w.r.t. a dominating site.

    *sites* are the surviving :class:`~repro.core.analysis.CheckSite`
    candidates (post-elimination, pre-batching).  A site only justifies
    eliminating another if it is itself kept — redundancy is always
    proven against a *kept* dominator, so chains collapse onto one
    representative check rather than eliminating each other.
    """
    control_flow = graph.control_flow
    block_of = control_flow.block_of
    by_key: Dict[tuple, List] = {}
    for site in sites:
        key = (site.mem, site.width)
        by_key.setdefault(key, []).append(site)

    redundant: Set[int] = set()
    for key, group in by_key.items():
        if len(group) < 2:
            continue
        registers = group[0].operand_registers()
        group = sorted(group, key=lambda site: site.address)
        kept: List = []
        for site in group:
            if any(
                _justifies(graph, dominators, dominator, site, registers)
                for dominator in kept
            ):
                redundant.add(site.address)
            else:
                kept.append(site)
    return redundant


def _position(block, address: int) -> int:
    for index, instruction in enumerate(block.instructions):
        if instruction.address == address:
            return index
    raise ValueError(f"address {address:#x} not in block {block.start:#x}")


def _justifies(graph: BlockGraph, dominators, dominator, site,
               registers: FrozenSet) -> bool:
    """Does kept check *dominator* make *site*'s check redundant?"""
    control_flow = graph.control_flow
    d_block = control_flow.block_of[dominator.address]
    s_block = control_flow.block_of[site.address]
    if d_block is s_block:
        start = _position(d_block, dominator.address)
        end = _position(s_block, site.address)
        if start >= end:
            return False
        return _segment_clean(d_block.instructions[start + 1:end], registers)
    if d_block.start not in dominators.get(s_block.start, frozenset()):
        return False
    d_index = _position(d_block, dominator.address)
    s_index = _position(s_block, site.address)
    if not _segment_clean(d_block.instructions[d_index + 1:], registers):
        return False
    if not _segment_clean(s_block.instructions[:s_index], registers):
        return False
    for between in graph.reachable_between(d_block.start, s_block.start):
        if not _segment_clean(graph.block_at(between).instructions, registers):
            return False
    return True
