"""Print per-block dataflow facts for a binary (debugging aid).

Run: ``python -m repro.analysis.dump prog.melf`` (or ``prog.c``; MiniC
source is compiled on the fly).  The same report backs the ``redfat
analyze`` CLI subcommand.

For every basic block: its address range, successors/predecessors,
immediate dominator set, the provenance facts at block entry, and the
effective live-out.  ``--sites`` additionally classifies every memory
operand the way the instrumentation pipeline would (checked, or
eliminated and by which rule).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis.engine import DataflowInfo
from repro.analysis.liveness import FLAGS
from repro.isa.registers import Register


def _render_facts(facts) -> str:
    if facts is None:
        return "(unreached)"
    parts = []
    for register in sorted(facts, key=int):
        kind, bound = facts[register]
        rendered = kind.name if hasattr(kind, "name") else str(kind)
        if bound:
            rendered += f"+{bound:#x}"
        parts.append(f"{register.att_name}={rendered}")
    return " ".join(parts) if parts else "(nothing known)"


def _render_live(live) -> str:
    if live is None:
        return "(unknown: everything assumed live)"
    registers = sorted(
        (r for r in live if isinstance(r, Register)), key=int
    )
    parts = [register.att_name for register in registers]
    if FLAGS in live:
        parts.append("flags")
    if len(registers) == 16:
        return "all registers" + (" + flags" if FLAGS in live else "")
    return " ".join(parts) if parts else "(nothing)"


def render_dataflow(info: DataflowInfo, sites: bool = False) -> List[str]:
    """The per-block fact report as lines of text."""
    lines: List[str] = []
    graph = info.graph
    if info.fallback:
        lines.append(f"!! analysis fell back: {info.fallback_reason}")
        lines.append("   (facts below are the conservative defaults)")
    lines.append(
        f"{len(graph.blocks)} blocks, {len(graph.roots)} roots"
        + (f", {len(graph.leaky)} leaky" if graph.leaky else "")
    )
    classifications = {}
    if sites:
        classifications = _classify_sites(info)
    for block in graph.blocks:
        start = block.start
        flags = []
        if start in graph.roots:
            flags.append("root")
        if start in graph.leaky:
            flags.append("leaky")
        suffix = f"  [{' '.join(flags)}]" if flags else ""
        lines.append(f"block {start:#x}..{block.end:#x} "
                     f"({len(block.instructions)} instructions){suffix}")
        succs = ", ".join(f"{s:#x}" for s in graph.succs.get(start, ()))
        preds = ", ".join(f"{p:#x}" for p in graph.preds.get(start, ()))
        lines.append(f"  succs: {succs or '(none)'}   preds: {preds or '(none)'}")
        dom = info.dominators.get(start)
        if dom is not None:
            others = sorted(d for d in dom if d != start)
            lines.append(
                "  dominators: "
                + (", ".join(f"{d:#x}" for d in others) or "(entry)")
            )
        lines.append(f"  entry facts: "
                     f"{_render_facts(None if info.fallback else info.entry_facts.get(start))}")
        lines.append(f"  live-out: "
                     f"{_render_live(None if info.fallback else info.live_out.get(start))}")
        if sites:
            for instruction in block.instructions:
                verdict = classifications.get(instruction.address)
                if verdict is not None:
                    lines.append(f"    {instruction.address:#x}: {verdict}")
    return lines


def _classify_sites(info: DataflowInfo) -> dict:
    """site address -> how the default pipeline treats its operand."""
    from repro.core.analysis import find_candidate_sites
    from repro.core.options import RedFatOptions

    sites, stats = find_candidate_sites(
        info.graph.control_flow, RedFatOptions(), dataflow=info
    )
    checked = {site.address: "checked" for site in sites}
    classification = dict(checked)
    for instruction in info.graph.control_flow.instructions:
        access = instruction.memory_access()
        if access is None or instruction.address in classification:
            continue
        classification[instruction.address] = "eliminated"
    return classification


def analyze_target(target, telemetry=None) -> DataflowInfo:
    """Load *target* (path/Binary/CompiledProgram) and run the analyses."""
    from repro import api
    from repro.analysis.engine import analyze_control_flow
    from repro.rewriter.cfg import recover_control_flow

    program = api.load(target)
    control_flow = recover_control_flow(program.binary, telemetry=telemetry)
    return analyze_control_flow(control_flow, telemetry=telemetry)


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point: ``python -m repro.analysis.dump`` / ``redfat
    analyze`` — print per-block dataflow facts for a binary or source."""
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("binary", help="binary image or MiniC source (.c)")
    parser.add_argument("--sites", action="store_true",
                        help="also classify every memory operand")
    arguments = parser.parse_args(argv)
    try:
        info = analyze_target(arguments.binary)
    except FileNotFoundError as error:
        print(f"dump: {error}", file=sys.stderr)
        return 2
    for line in render_dataflow(info, sites=arguments.sites):
        print(line)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
