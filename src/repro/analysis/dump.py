"""Print per-block dataflow facts for a binary (debugging aid).

Run: ``python -m repro.analysis.dump prog.melf`` (or ``prog.c``; MiniC
source is compiled on the fly).  The same report backs the ``redfat
analyze`` CLI subcommand.

For every basic block: its address range, successors/predecessors,
immediate dominator set, the provenance facts at block entry, and the
effective live-out.  ``--sites`` additionally classifies every memory
operand the way the instrumentation pipeline would (checked, or
eliminated and by which rule).  ``--facts callgraph|summaries|ranges``
switches to the interprocedural layer: the recovered call graph, the
bottom-up function summaries, or the per-block value-range facts.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis.engine import DataflowInfo
from repro.analysis.liveness import FLAGS
from repro.isa.registers import Register


def _render_facts(facts) -> str:
    if facts is None:
        return "(unreached)"
    parts = []
    for register in sorted(facts, key=int):
        kind, bound = facts[register]
        rendered = kind.name if hasattr(kind, "name") else str(kind)
        if bound:
            rendered += f"+{bound:#x}"
        parts.append(f"{register.att_name}={rendered}")
    return " ".join(parts) if parts else "(nothing known)"


def _render_live(live) -> str:
    if live is None:
        return "(unknown: everything assumed live)"
    registers = sorted(
        (r for r in live if isinstance(r, Register)), key=int
    )
    parts = [register.att_name for register in registers]
    if FLAGS in live:
        parts.append("flags")
    if len(registers) == 16:
        return "all registers" + (" + flags" if FLAGS in live else "")
    return " ".join(parts) if parts else "(nothing)"


def render_dataflow(info: DataflowInfo, sites: bool = False) -> List[str]:
    """The per-block fact report as lines of text."""
    lines: List[str] = []
    graph = info.graph
    if info.fallback:
        lines.append(f"!! analysis fell back: {info.fallback_reason}")
        lines.append("   (facts below are the conservative defaults)")
    lines.append(
        f"{len(graph.blocks)} blocks, {len(graph.roots)} roots"
        + (f", {len(graph.leaky)} leaky" if graph.leaky else "")
    )
    classifications = {}
    if sites:
        classifications = _classify_sites(info)
    for block in graph.blocks:
        start = block.start
        flags = []
        if start in graph.roots:
            flags.append("root")
        if start in graph.leaky:
            flags.append("leaky")
        suffix = f"  [{' '.join(flags)}]" if flags else ""
        lines.append(f"block {start:#x}..{block.end:#x} "
                     f"({len(block.instructions)} instructions){suffix}")
        succs = ", ".join(f"{s:#x}" for s in graph.succs.get(start, ()))
        preds = ", ".join(f"{p:#x}" for p in graph.preds.get(start, ()))
        lines.append(f"  succs: {succs or '(none)'}   preds: {preds or '(none)'}")
        dom = info.dominators.get(start)
        if dom is not None:
            others = sorted(d for d in dom if d != start)
            lines.append(
                "  dominators: "
                + (", ".join(f"{d:#x}" for d in others) or "(entry)")
            )
        lines.append(f"  entry facts: "
                     f"{_render_facts(None if info.fallback else info.entry_facts.get(start))}")
        lines.append(f"  live-out: "
                     f"{_render_live(None if info.fallback else info.live_out.get(start))}")
        if sites:
            for instruction in block.instructions:
                verdict = classifications.get(instruction.address)
                if verdict is not None:
                    lines.append(f"    {instruction.address:#x}: {verdict}")
    return lines


def _render_range_value(value) -> str:
    def bound(b):
        return "-inf" if b is None else str(b)

    if value.base == "num":
        rendered = f"[{bound(value.lo)}, {value.hi if value.hi is not None else '+inf'}]"
        if value.stride:
            rendered += f"/{value.stride}"
    elif value.base == "alloc":
        if value.size_lo is None and value.size_hi is None:
            size = "?"
            if value.size_args:
                size = "*".join(f"arg({i})" for i in value.size_args)
        elif value.size_lo == value.size_hi:
            size = f"{value.size_lo}"
        else:
            size = f"[{value.size_lo}, {value.size_hi}]"
        rendered = (f"alloc@{value.ident:#x}+[{bound(value.lo)}, "
                    f"{value.hi if value.hi is not None else '+inf'}] "
                    f"size={size}")
    else:
        scaled = f"{value.scale}*" if value.scale != 1 else ""
        rendered = (f"{scaled}arg({value.ident})+[{bound(value.lo)}, "
                    f"{value.hi if value.hi is not None else '+inf'}]")
    if value.widened:
        rendered += " (widened)"
    return rendered


def render_callgraph(info: DataflowInfo) -> List[str]:
    """The recovered call graph, callees first."""
    lines: List[str] = []
    if info.callgraph is None:
        return [f"(no call graph: {info.interproc_reason or 'interproc disabled'})"]
    graph = info.callgraph
    for entry in graph.callees_first:
        function = graph.functions[entry]
        flags = []
        if function.recursive:
            flags.append("recursive")
        if function.has_indirect:
            flags.append("indirect-calls")
        if function.leaky:
            flags.append("leaky")
        if function.widened:
            flags.append("widened")
        suffix = f"  [{' '.join(flags)}]" if flags else ""
        lines.append(f"function {entry:#x} "
                     f"({len(function.blocks)} blocks){suffix}")
        for site, target in sorted(function.calls.items()):
            lines.append(f"  calls {target:#x} (from block {site:#x})")
    return lines


def render_summaries(info: DataflowInfo) -> List[str]:
    """The bottom-up per-function summaries."""
    if info.summaries is None:
        return [f"(no summaries: {info.interproc_reason or 'interproc disabled'})"]
    lines: List[str] = []
    for entry in sorted(info.summaries):
        summary = info.summaries[entry]
        lines.append(f"function {entry:#x}"
                     + ("  [widened]" if summary.widened else ""))
        clobbered = sorted(summary.clobbered, key=int)
        lines.append("  clobbers: "
                     + (" ".join(r.att_name for r in clobbered) or "(none)"))
        if summary.frees_args:
            lines.append(f"  frees args: {sorted(summary.frees_args)}")
        if summary.frees_other:
            lines.append("  frees: unaccounted pointers")
        if summary.pointer_store_args:
            lines.append(
                f"  stores through args: {sorted(summary.pointer_store_args)}")
        if summary.stack_stores or summary.unknown_stores:
            lines.append("  stores: may alias caller stack")
        if summary.returns is not None:
            lines.append(f"  returns: {_render_range_value(summary.returns)}")
    return lines


def render_ranges(info: DataflowInfo) -> List[str]:
    """The per-block value-range facts (block entry states)."""
    if info.range_facts is None:
        return [f"(no range facts: {info.interproc_reason or 'interproc disabled'})"]
    lines: List[str] = []
    for block in info.graph.blocks:
        state = info.range_facts.get(block.start)
        if state is None:
            lines.append(f"block {block.start:#x}: (unreached)")
            continue
        if state.havoc:
            lines.append(f"block {block.start:#x}: (havoc)")
            continue
        lines.append(f"block {block.start:#x}:")
        for register in sorted(state.regs, key=int):
            lines.append(f"  {register.att_name} = "
                         f"{_render_range_value(state.regs[register])}")
        for offset in sorted(state.slots):
            lines.append(f"  [rsp{offset:+#x}@entry] = "
                         f"{_render_range_value(state.slots[offset])}")
        for site in sorted(state.freed):
            lines.append(f"  freed alloc@{site:#x}: {state.freed[site]}")
        if state.freed_unknown:
            lines.append("  free-history unknown (conservative)")
    return lines


#: ``--facts`` choice -> renderer.
FACT_RENDERERS = {
    "callgraph": render_callgraph,
    "summaries": render_summaries,
    "ranges": render_ranges,
}


def _classify_sites(info: DataflowInfo) -> dict:
    """site address -> how the default pipeline treats its operand."""
    from repro.core.analysis import find_candidate_sites
    from repro.core.options import RedFatOptions

    sites, stats = find_candidate_sites(
        info.graph.control_flow, RedFatOptions(), dataflow=info
    )
    checked = {site.address: "checked" for site in sites}
    classification = dict(checked)
    for instruction in info.graph.control_flow.instructions:
        access = instruction.memory_access()
        if access is None or instruction.address in classification:
            continue
        classification[instruction.address] = "eliminated"
    return classification


def analyze_target(target, telemetry=None) -> DataflowInfo:
    """Load *target* (path/Binary/CompiledProgram) and run the analyses."""
    from repro import api
    from repro.analysis.engine import analyze_control_flow
    from repro.rewriter.cfg import recover_control_flow

    program = api.load(target)
    control_flow = recover_control_flow(program.binary, telemetry=telemetry)
    return analyze_control_flow(control_flow, telemetry=telemetry)


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point: ``python -m repro.analysis.dump`` / ``redfat
    analyze`` — print per-block dataflow facts for a binary or source."""
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("binary", help="binary image or MiniC source (.c)")
    parser.add_argument("--sites", action="store_true",
                        help="also classify every memory operand")
    parser.add_argument("--facts", choices=sorted(FACT_RENDERERS),
                        help="print an interprocedural fact table instead "
                             "of the per-block dataflow report")
    arguments = parser.parse_args(argv)
    try:
        info = analyze_target(arguments.binary)
    except FileNotFoundError as error:
        print(f"dump: {error}", file=sys.stderr)
        return 2
    if arguments.facts:
        lines = FACT_RENDERERS[arguments.facts](info)
    else:
        lines = render_dataflow(info, sites=arguments.sites)
    for line in lines:
        print(line)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
