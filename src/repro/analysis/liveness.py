"""Global (inter-block) register + flags liveness.

Backward dataflow over :class:`BlockGraph`: a register is *live* at a
point when some path from that point may read it before writing it.
Trampoline specialization (``rewriter/regusage.py``) historically
assumed everything live at every block boundary; this analysis replaces
that assumption with the join over real successors, so straight-line
code feeding a register-recycling loop stops paying save/restore pairs.

Conservatism at the unknown edges of the recovered CFG:

- a ``ret``-, ``call``-, ``callr``- or ``rtcall``-terminated block makes
  every register live at its exit (the callee/caller may read anything)
  but the flags **dead** — the ABI forbids relying on flags across
  call/return boundaries (the same rule ``flags_dead_after`` already
  applies locally);
- an indirect jump's exit facts join over *all* recovered target blocks
  (the edge set over-approximates by construction);
- a ``trap``-terminated block has nothing live (execution ends);
- a *leaky* block (a transfer out of the decoded text) and a block the
  decoded text simply falls off keep everything live.

The live set is a frozenset of :class:`Register` members plus the
:data:`FLAGS` sentinel.  Every effective live-out computed here is a
subset of the all-live assumption, so specialization driven by this
analysis can only save more, never fewer, spills than the block-local
rule.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List

from repro.isa.instructions import Instruction
from repro.isa.opcodes import CONDITIONAL_JUMPS, Opcode, SETCC_CONDITIONS
from repro.isa.registers import GPRS, Register
from repro.analysis.graph import BlockGraph
from repro.analysis import solver

#: Sentinel member of the live set standing for the flags register.
FLAGS = "FLAGS"

#: Every register live, flags live: the unknown-control conservative top.
ALL_LIVE: FrozenSet = frozenset(GPRS) | {FLAGS}

#: Every register live, flags dead: the call/return ABI boundary.
ALL_REGS_LIVE: FrozenSet = frozenset(GPRS)

#: Block terminators that hand control to ABI-respecting code.
_ABI_BOUNDARY = (Opcode.CALL, Opcode.CALLR, Opcode.RET, Opcode.RTCALL)


def reads_flags(instruction: Instruction) -> bool:
    """True when the instruction consumes CPU flags (jcc/setcc/adc-like)."""
    return (
        instruction.opcode in CONDITIONAL_JUMPS
        or instruction.opcode in SETCC_CONDITIONS
        or instruction.opcode is Opcode.PUSHF
    )


def step_backward(live: FrozenSet, instruction: Instruction) -> FrozenSet:
    """Live set *before* executing *instruction*, given the set after."""
    updated = set(live)
    for register in instruction.regs_written():
        updated.discard(register)
    if instruction.writes_flags() or instruction.opcode is Opcode.POPF:
        updated.discard(FLAGS)
    updated.update(instruction.regs_read())
    if reads_flags(instruction):
        updated.add(FLAGS)
    return frozenset(updated)


def effective_exit(graph: BlockGraph, node: int, successor_fact: FrozenSet) -> FrozenSet:
    """A block's live-out given the join of its successors' live-ins."""
    block = graph.block_at(node)
    last = block.instructions[-1]
    if node in graph.leaky:
        return ALL_LIVE
    if last.opcode is Opcode.TRAP:
        return frozenset()
    if last.opcode in _ABI_BOUNDARY:
        # Callee/caller may read any register; flags never survive.
        return ALL_REGS_LIVE | (successor_fact - {FLAGS})
    if not graph.succs.get(node):
        return ALL_LIVE  # the decoded text just ends here
    return successor_fact


def compute_live_out(graph: BlockGraph) -> Dict[int, FrozenSet]:
    """Effective live-out set per block start address."""

    def transfer(node: int, successor_fact: FrozenSet) -> FrozenSet:
        """Backward block transfer: fold every instruction's kill/gen
        over the live-out set to produce the block's live-in set."""
        live = effective_exit(graph, node, successor_fact)
        for instruction in reversed(graph.block_at(node).instructions):
            live = step_backward(live, instruction)
        return live

    # Backward roots: sink blocks (ret/trap/leaky/decoded-end) — nothing
    # propagates into them, so they must seed the worklist themselves.
    roots = [
        block.start for block in graph.blocks
        if not graph.succs.get(block.start)
    ]
    facts = solver.solve(
        graph,
        direction="backward",
        boundary=frozenset(),
        transfer=transfer,
        join=lambda a, b: a | b,
        roots=roots,
    )
    return {
        block.start: effective_exit(
            graph, block.start, facts.get(block.start, ALL_LIVE)
        )
        for block in graph.blocks
    }


def live_sets_within(block_instructions: List[Instruction],
                     live_out: FrozenSet) -> List[FrozenSet]:
    """Live set *before* each instruction of a block, front to back."""
    sets: List[FrozenSet] = [frozenset()] * len(block_instructions)
    live = live_out
    for index in range(len(block_instructions) - 1, -1, -1):
        live = step_backward(live, block_instructions[index])
        sets[index] = live
    return sets


def dead_registers_at(block_instructions: List[Instruction], index: int,
                      live_out: FrozenSet) -> FrozenSet:
    """Registers a trampoline entered before *index* may clobber.

    Equivalent to ``regusage.dead_registers_after`` when *live_out* is
    :data:`ALL_LIVE`; with a real live-out it additionally reports
    registers the suffix never mentions and no successor reads.
    """
    live = live_out
    for position in range(len(block_instructions) - 1, index - 1, -1):
        live = step_backward(live, block_instructions[position])
    dead = set(GPRS) - {r for r in live if isinstance(r, Register)}
    dead.discard(Register.RSP)
    return frozenset(dead)


def flags_dead_at(block_instructions: List[Instruction], index: int,
                  live_out: FrozenSet) -> bool:
    """Flags counterpart of :func:`dead_registers_at`."""
    live = live_out
    for position in range(len(block_instructions) - 1, index - 1, -1):
        live = step_backward(live, block_instructions[position])
    return FLAGS not in live
