"""Flow-sensitive dataflow analyses over the recovered CFG.

A reusable worklist fixpoint solver (:mod:`repro.analysis.solver`) over
block successor/predecessor edges (:mod:`repro.analysis.graph`), with
three client analyses feeding the instrumentation pipeline:

- :mod:`repro.analysis.provenance` — per-register pointer-provenance
  lattice; justifies flow-sensitive check elimination (operands whose
  base provably derives from RSP/RIP/absolute addresses);
- :mod:`repro.analysis.liveness` — global register+flags liveness,
  replacing the everything-live-at-block-boundary assumption in
  trampoline specialization;
- :mod:`repro.analysis.dominators` — intra-procedural dominators and
  dominated-redundancy removal for identical checked accesses;
- :mod:`repro.analysis.callgraph` — call-graph recovery with bottom-up
  per-function summaries (clobbers, frees, store targets, symbolic
  returns);
- :mod:`repro.analysis.ranges` — interprocedural value-range/stride
  domain over registers and stack slots; justifies the
  ``eliminated_range`` check-elimination reason;
- :mod:`repro.analysis.audit` — the static memory-error auditor
  (``redfat audit``) built on the range facts.

Entry point: :func:`analyze_control_flow`, returning a
:class:`DataflowInfo` bundle that degrades gracefully (see
:mod:`repro.analysis.engine`).  ``python -m repro.analysis.dump FILE``
prints the per-block facts for debugging, as does ``redfat analyze``.
"""

from repro.analysis.engine import DataflowInfo, analyze_control_flow
from repro.analysis.graph import BlockGraph, build_block_graph
from repro.analysis.solver import FixpointDiverged, solve

__all__ = [
    "DataflowInfo",
    "analyze_control_flow",
    "BlockGraph",
    "build_block_graph",
    "FixpointDiverged",
    "solve",
]
