"""Interprocedural value-range/stride analysis (the ``eliminated_range`` engine).

Each register (and each tracked stack slot) carries a value
``(base-provenance, [lo, hi], stride)``:

``base = "num"``
    A plain integer; ``[lo, hi]`` bounds its value (``None`` = unbounded).

``base = "alloc"``
    A pointer into the heap object allocated at call/rtcall site
    ``ident``; ``[lo, hi]`` bounds the byte offset from the object start
    and ``size_lo/size_hi`` bound the allocation size (recovered from the
    ``malloc``-family rtcall argument at the site).

``base = "arg"``
    Symbolic: the value the caller passed in ``ARG_REGS[ident]`` plus
    ``[lo, hi]``.  Only used while summarising a function bottom-up
    (:mod:`repro.analysis.callgraph`); concrete solutions substitute the
    call-site facts for it.

MiniC-grade code generators spill everything through ``push``/``pop`` and
rsp-relative slots, so the state also tracks the stack: ``rsp_delta`` is
the current RSP relative to function entry and ``slots`` maps
entry-relative offsets to values.  The per-allocation-site ``freed``
lattice (``no < maybe`` / ``yes``) records free()s so that (a) range
elimination never drops a check guarding a possibly-freed object and
(b) the static auditor can flag double-free paths.

Termination: the join *widens* — a bound that grows between solver
iterations is rounded outward to the next power of two (saturating to
unbounded past 2**40), the same finite-chain trick
``provenance._join_bound`` uses — so pointer-increment loops converge
within the worklist budget.  Values whose bounds were widened are marked
(``widened=True``); *must*/in-bounds verdicts remain sound on widened
values (widening only grows intervals outward) but *may* verdicts are
suppressed for them, keeping the auditor quiet on ordinary loops.

Soundness of the facts rests on what the function summaries verify about
the whole decoded text: callees only store through their own frame or
through pointers whose provenance is visible at the call site, and every
``free`` is accounted.  Anything the summaries cannot prove degrades the
state (slots cleared, ``freed`` demoted, registers dropped) — precision
lost here costs a check or a finding, never a missed detection.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from math import gcd
from typing import Dict, List, Optional, Set, Tuple

from repro.isa.instructions import Instruction
from repro.isa.opcodes import Opcode, SETCC_CONDITIONS
from repro.isa.operands import Imm, Mem, Reg
from repro.isa.registers import ARG_REGS, GPRS, RAX, RDI, RSI, RSP, Register
from repro.vm.runtime_iface import Service

#: Bounds saturate to unbounded (None) past this magnitude.
BOUND_LIMIT = 1 << 40

#: ``rtcall`` services that return a fresh allocation, mapped to the
#: argument indices whose *product* is the allocation size.
ALLOC_SERVICES: Dict[int, Tuple[int, ...]] = {
    int(Service.MALLOC): (0,),
    int(Service.CALLOC): (0, 1),
    int(Service.REALLOC): (1,),
}

#: ``rtcall`` services that (may) free the object their pointer argument
#: points to.
FREEING_SERVICES = frozenset({int(Service.FREE), int(Service.REALLOC)})

#: The freed lattice: absent < "maybe"; "yes" means freed on every path.
FREED_NO = "no"
FREED_MAYBE = "maybe"
FREED_YES = "yes"


@dataclass(frozen=True)
class RangeVal:
    """One abstract value: ``(base, ident, [lo, hi], stride, size)``."""

    base: str                      # "num" | "alloc" | "arg"
    ident: int = 0                 # alloc site address / argument index
    lo: Optional[int] = None       # None = unbounded below
    hi: Optional[int] = None       # None = unbounded above
    stride: int = 0                # gcd of pairwise value distances (0 = none)
    size_lo: Optional[int] = None  # allocation size bounds ("alloc" only)
    size_hi: Optional[int] = None
    #: Argument indices whose product gives the size, for allocations
    #: whose size is still symbolic (a summary's fresh-allocation value).
    size_args: Tuple[int, ...] = ()
    #: Freshly returned by its allocation site (re-sited per call site
    #: when a summary returning it is instantiated).
    fresh: bool = False
    #: A widening step moved a bound beyond the exact hull; *may*
    #: verdicts are suppressed for widened values.
    widened: bool = False
    #: Multiplier on the symbolic base ("arg" only): the value is
    #: ``scale * arg(ident) + [lo, hi]``.  Always 1 for other bases.
    scale: int = 1

    @property
    def is_exact(self) -> bool:
        return self.lo is not None and self.lo == self.hi


def num(lo: Optional[int], hi: Optional[int], stride: int = 0,
        widened: bool = False) -> RangeVal:
    return _norm(RangeVal("num", 0, lo, hi, stride, widened=widened))


def const(value: int) -> RangeVal:
    return num(value, value)


def _clamp(bound: Optional[int]) -> Optional[int]:
    if bound is None or abs(bound) > BOUND_LIMIT:
        return None
    return bound


def _norm(value: Optional[RangeVal]) -> Optional[RangeVal]:
    """Clamp out-of-window bounds to unbounded; None stays None (TOP)."""
    if value is None:
        return None
    lo, hi = _clamp(value.lo), _clamp(value.hi)
    if lo is not value.lo or hi is not value.hi:
        value = replace(value, lo=lo, hi=hi, stride=0)
    return value


def _round_up(bound: int) -> Optional[int]:
    """The smallest widening threshold >= *bound* (powers of two and 0)."""
    if bound > BOUND_LIMIT:
        return None
    if bound <= 0:
        magnitude = -bound
        if magnitude <= 1:
            return bound  # -1 and 0 are thresholds themselves
        power = 1
        while power * 2 <= magnitude:
            power *= 2
        return -power
    power = 1
    while power < bound:
        power *= 2
    return power


def _round_down(bound: int) -> Optional[int]:
    up = _round_up(-bound)
    return None if up is None else -up


def join_value(old: Optional[RangeVal], new: Optional[RangeVal]) -> Optional[RangeVal]:
    """Widening join.  *old* is the fact already at the join point: a
    bound is kept when the new value stays inside it and rounded outward
    (powers of two, saturating to unbounded) when it grew — the finite
    ascending chain that makes pointer-increment loops converge."""
    if old is None or new is None:
        return None
    if old == new:
        return old
    if (old.base != new.base or old.ident != new.ident
            or old.size_args != new.size_args or old.fresh != new.fresh
            or old.scale != new.scale):
        return None
    widened = old.widened or new.widened
    if old.lo is None or (new.lo is not None and new.lo >= old.lo):
        lo = old.lo
    else:
        lo = None if new.lo is None else _round_down(new.lo)
        widened = widened or lo != (min(old.lo, new.lo)
                                    if new.lo is not None else None)
    if old.hi is None or (new.hi is not None and new.hi <= old.hi):
        hi = old.hi
    else:
        hi = None if new.hi is None else _round_up(new.hi)
        widened = widened or hi != (max(old.hi, new.hi)
                                    if new.hi is not None else None)
    if old.lo is not None and new.lo is not None:
        stride = gcd(old.stride, new.stride, abs(old.lo - new.lo))
    else:
        stride = 0
    size_lo = _join_size(old.size_lo, new.size_lo, low=True)
    size_hi = _join_size(old.size_hi, new.size_hi, low=False)
    return _norm(RangeVal(old.base, old.ident, lo, hi, stride,
                          size_lo, size_hi, old.size_args, old.fresh, widened,
                          old.scale))


def _join_size(a: Optional[int], b: Optional[int], low: bool) -> Optional[int]:
    if a is None or b is None:
        return None
    if a == b:
        return a
    return max(0, min(a, b)) if low else max(a, b)


# -- interval arithmetic ----------------------------------------------------


def _shift(value: Optional[RangeVal], delta: int) -> Optional[RangeVal]:
    if value is None or delta == 0:
        return value
    lo = None if value.lo is None else value.lo + delta
    hi = None if value.hi is None else value.hi + delta
    return _norm(replace(value, lo=lo, hi=hi))


def _add(a: Optional[RangeVal], b: Optional[RangeVal]) -> Optional[RangeVal]:
    if a is None or b is None:
        return None
    if a.base != "num" and b.base == "num":
        pointer, offset = a, b
    elif a.base == "num" and b.base != "num":
        pointer, offset = b, a
    elif a.base == "num":
        lo = None if a.lo is None or b.lo is None else a.lo + b.lo
        hi = None if a.hi is None or b.hi is None else a.hi + b.hi
        return num(lo, hi, gcd(a.stride, b.stride),
                   widened=a.widened or b.widened)
    else:
        return None  # pointer + pointer: meaningless
    lo = None if pointer.lo is None or offset.lo is None else pointer.lo + offset.lo
    hi = None if pointer.hi is None or offset.hi is None else pointer.hi + offset.hi
    return _norm(replace(pointer, lo=lo, hi=hi,
                         stride=gcd(pointer.stride, offset.stride),
                         widened=pointer.widened or offset.widened))


def _neg(value: Optional[RangeVal]) -> Optional[RangeVal]:
    if value is None or value.base != "num":
        return None
    lo = None if value.hi is None else -value.hi
    hi = None if value.lo is None else -value.lo
    return num(lo, hi, value.stride, widened=value.widened)


def _mul(a: Optional[RangeVal], b: Optional[RangeVal]) -> Optional[RangeVal]:
    if a is None or b is None:
        return None
    # Symbolic argument × exact constant stays affine: k·(s·arg + [lo,hi])
    # = (k·s)·arg + [k·lo, k·hi] (the summary-mode strength-reduction case).
    if a.base == "arg" and b.base == "num" and b.is_exact and b.lo >= 0:
        a, b = b, a
    if b.base == "arg" and a.base == "num" and a.is_exact and a.lo >= 0:
        k = a.lo
        if k == 0:
            return const(0)
        lo = None if b.lo is None else b.lo * k
        hi = None if b.hi is None else b.hi * k
        return _norm(replace(b, lo=lo, hi=hi, stride=b.stride * k,
                             scale=b.scale * k))
    if a.base != "num" or b.base != "num":
        return None
    if b.is_exact and b.lo is not None and a.is_exact and a.lo is not None:
        pass  # both exact: fall through to the product table
    elif b.is_exact and b.lo is not None and b.lo >= 0:
        # Half-open × exact non-negative constant (the address-scale
        # case): each present bound scales independently.
        lo = None if a.lo is None else a.lo * b.lo
        hi = None if a.hi is None else a.hi * b.lo
        return num(lo, hi, a.stride * b.lo, widened=a.widened or b.widened)
    elif a.is_exact and a.lo is not None and a.lo >= 0:
        lo = None if b.lo is None else b.lo * a.lo
        hi = None if b.hi is None else b.hi * a.lo
        return num(lo, hi, b.stride * a.lo, widened=a.widened or b.widened)
    if None in (a.lo, a.hi, b.lo, b.hi):
        return None
    products = [a.lo * b.lo, a.lo * b.hi, a.hi * b.lo, a.hi * b.hi]
    stride = 0
    if b.is_exact:
        stride = a.stride * abs(b.lo)
    elif a.is_exact:
        stride = b.stride * abs(a.lo)
    return num(min(products), max(products), stride,
               widened=a.widened or b.widened)


# -- the per-point state ----------------------------------------------------


@dataclass
class RangeState:
    """Abstract machine state at one program point."""

    regs: Dict[Register, RangeVal] = field(default_factory=dict)
    #: Function-entry-relative RSP offset -> value of the 8-byte slot.
    slots: Dict[int, RangeVal] = field(default_factory=dict)
    #: Current RSP minus the RSP at function entry (<= 0 inside a frame).
    rsp_delta: int = 0
    #: Allocation site -> "maybe"/"yes" (absent = provably not freed).
    freed: Dict[int, str] = field(default_factory=dict)
    #: Entered with unknown history: absent ``freed`` entries mean
    #: "maybe", not "no" (unknown-caller / recursive entries).
    freed_unknown: bool = False
    #: Know-nothing state (stack height lost); all queries answer None.
    havoc: bool = False

    def copy(self) -> "RangeState":
        return RangeState(dict(self.regs), dict(self.slots), self.rsp_delta,
                          dict(self.freed), self.freed_unknown, self.havoc)

    def freed_state(self, site: int) -> str:
        if self.havoc:
            return FREED_MAYBE
        value = self.freed.get(site)
        if value is not None:
            return value
        return FREED_MAYBE if self.freed_unknown else FREED_NO

    def reg(self, register: Register) -> Optional[RangeVal]:
        if self.havoc:
            return None
        return self.regs.get(register)


HAVOC = RangeState(havoc=True)


def entry_state(symbolic: bool = False, unknown: bool = False) -> RangeState:
    """The state at a function entry.

    *symbolic* seeds the argument registers with ``arg(i)`` values (the
    summary-mode boundary); *unknown* marks the free-history unknown (the
    unknown-caller / recursive boundary).
    """
    regs: Dict[Register, RangeVal] = {}
    if symbolic:
        for index, register in enumerate(ARG_REGS):
            regs[register] = RangeVal("arg", index, 0, 0)
    return RangeState(regs=regs, freed_unknown=unknown or symbolic)


def join_state(old: Optional[RangeState],
               new: Optional[RangeState]) -> RangeState:
    """Pointwise widening join; mismatched stack heights go to HAVOC."""
    if old is None or new is None:
        return HAVOC
    if old.havoc or new.havoc:
        return HAVOC
    if old.rsp_delta != new.rsp_delta:
        return HAVOC
    regs: Dict[Register, RangeVal] = {}
    for register, value in old.regs.items():
        joined = join_value(value, new.regs.get(register))
        if joined is not None:
            regs[register] = joined
    slots: Dict[int, RangeVal] = {}
    for key, value in old.slots.items():
        joined = join_value(value, new.slots.get(key))
        if joined is not None:
            slots[key] = joined
    freed: Dict[int, str] = {}
    freed_unknown = old.freed_unknown or new.freed_unknown
    for site in set(old.freed) | set(new.freed):
        a, b = old.freed_state(site), new.freed_state(site)
        freed[site] = a if a == b else FREED_MAYBE
    return RangeState(regs, slots, old.rsp_delta, freed, freed_unknown)


def _demote_freed(state: RangeState) -> None:
    """An unaccounted free happened: every live object is now "maybe"."""
    for site, value in state.freed.items():
        if value == FREED_NO:
            state.freed[site] = FREED_MAYBE
    state.freed_unknown = True


def _mark_freed(state: RangeState, site: int) -> None:
    state.freed[site] = FREED_YES


# -- summary-side observations ----------------------------------------------


class SummaryCollector:
    """Mutable facts gathered while running a function in symbolic mode.

    Every field only ever grows (monotone), so re-running transfers
    during the fixpoint iteration can only make the summary more
    conservative, never less.
    """

    def __init__(self) -> None:
        self.frees_args: Set[int] = set()
        self.frees_other = False
        self.pointer_store_args: Set[int] = set()
        self.stack_stores = False
        self.unknown_stores = False
        self.returns: Optional[RangeVal] = None
        self.saw_return = False

    def note_return(self, value: Optional[RangeVal]) -> None:
        if not self.saw_return:
            self.returns = value
            self.saw_return = True
        else:
            self.returns = join_value(self.returns, value)


# -- transfer functions -----------------------------------------------------


def _set_reg(state: RangeState, register: Register,
             value: Optional[RangeVal]) -> None:
    if register is RSP:
        state.havoc = True
        state.regs.clear()
        state.slots.clear()
        return
    if value is None:
        state.regs.pop(register, None)
    else:
        state.regs[register] = value


def _unknown_load(size: int, sign: bool) -> Optional[RangeVal]:
    if size >= 8:
        return None
    span = 1 << (8 * size)
    if sign:
        return num(-(span // 2), span // 2 - 1)
    return num(0, span - 1)


def _load(state: RangeState, mem: Mem, size: int, sign: bool) -> Optional[RangeVal]:
    if mem.base is RSP and mem.index is None:
        key = state.rsp_delta + mem.disp
        if size == 8 and key in state.slots:
            return state.slots[key]
    return _unknown_load(size, sign)


def _kill_slots(state: RangeState, key: int, size: int) -> None:
    first = key - key % 8
    last = (key + size - 1) - (key + size - 1) % 8
    state.slots.pop(first, None)
    if last != first:
        state.slots.pop(last, None)


def _store(state: RangeState, mem: Mem, source, size: int,
           collector: Optional[SummaryCollector]) -> None:
    if isinstance(source, Reg):
        value = state.regs.get(source.reg)
    elif isinstance(source, Imm):
        value = const(source.value)
    else:
        value = None
    if mem.base is RSP and mem.index is None:
        key = state.rsp_delta + mem.disp
        if key >= 0 and collector is not None:
            # A store at or above the entry RSP lands in the caller's
            # frame (or the return address): the summary must say so.
            collector.stack_stores = True
        _kill_slots(state, key, size)
        if size == 8 and key % 8 == 0 and value is not None:
            state.slots[key] = value
        return
    if mem.base is None or mem.base is Register.RIP:
        return  # absolute/global data: never aliases tracked stack slots
    base = state.regs.get(mem.base)
    if base is not None and base.base == "alloc":
        return  # provably a heap object: tracked slots survive
    if base is not None and base.base == "arg" and base.scale == 1:
        if collector is not None:
            collector.pointer_store_args.add(base.ident)
        return  # classified per call site when the summary is applied
    # Unknown destination: it could be a spilled slot of this frame.
    state.slots.clear()
    if collector is not None:
        collector.unknown_stores = True


def _free_value(state: RangeState, value: Optional[RangeVal],
                collector: Optional[SummaryCollector]) -> None:
    if value is not None and value.base == "alloc":
        _mark_freed(state, value.ident)
        return
    if value is not None and value.base == "arg":
        if collector is not None:
            if value.lo == 0 and value.hi == 0 and value.scale == 1:
                collector.frees_args.add(value.ident)
            else:
                collector.frees_other = True
        return
    if value is not None and value.base == "num" and value.lo == 0 and value.hi == 0:
        return  # free(NULL) is a no-op
    if collector is not None:
        collector.frees_other = True
    _demote_freed(state)


def _alloc_result(state: RangeState, site: int,
                  size_value: Optional[RangeVal]) -> RangeVal:
    size_lo = size_hi = None
    size_args: Tuple[int, ...] = ()
    if size_value is not None:
        if size_value.base == "num":
            size_lo, size_hi = size_value.lo, size_value.hi
        elif (size_value.base == "arg" and size_value.lo == 0
              and size_value.hi == 0 and size_value.scale == 1):
            size_args = (size_value.ident,)
    state.freed[site] = FREED_NO
    return RangeVal("alloc", site, 0, 0, 0, size_lo, size_hi, size_args,
                    fresh=True)


def _apply_rtcall(state: RangeState, instruction: Instruction,
                  collector: Optional[SummaryCollector]) -> None:
    service = instruction.operands[0].value if instruction.operands else -1
    args = {register: state.regs.get(register) for register in (RDI, RSI)}
    if service in FREEING_SERVICES:
        _free_value(state, args[RDI], collector)
    result: Optional[RangeVal] = None
    if service in ALLOC_SERVICES:
        size_args = ALLOC_SERVICES[service]
        size: Optional[RangeVal]
        if len(size_args) == 1:
            size = args[(RDI, RSI)[size_args[0]]]
        else:  # calloc: nmemb * size
            size = _mul(args[RDI], args[RSI])
        result = _alloc_result(state, instruction.address, size)
    for register in instruction.regs_written():
        state.regs.pop(register, None)
    if result is not None:
        state.regs[RAX] = result


def apply_instruction(state: RangeState, instruction: Instruction,
                      collector: Optional[SummaryCollector] = None) -> RangeState:
    """Destructively apply one instruction's transfer; returns *state*.

    ``call``/``callr`` are no-ops here — their (summary-driven) effect is
    applied on the fall-through edge by :func:`apply_call`.
    """
    if state.havoc:
        return state
    op = instruction.opcode
    ops = instruction.operands

    if op is Opcode.PUSH:
        state.rsp_delta -= 8
        value = state.regs.get(ops[0].reg)
        if value is None:
            state.slots.pop(state.rsp_delta, None)
        else:
            state.slots[state.rsp_delta] = value
        return state
    if op is Opcode.POP:
        value = state.slots.pop(state.rsp_delta, None)
        state.rsp_delta += 8
        _set_reg(state, ops[0].reg, value)
        return state
    if op is Opcode.PUSHF:
        state.rsp_delta -= 8
        state.slots.pop(state.rsp_delta, None)
        return state
    if op is Opcode.POPF:
        state.rsp_delta += 8
        return state
    if (op in (Opcode.ADD, Opcode.SUB) and isinstance(ops[0], Reg)
            and ops[0].reg is RSP and isinstance(ops[1], Imm)):
        delta = ops[1].value if op is Opcode.ADD else -ops[1].value
        state.rsp_delta += delta
        for key in [k for k in state.slots if k < state.rsp_delta]:
            del state.slots[key]  # below RSP: dead
        return state
    if op in (Opcode.CALL, Opcode.CALLR, Opcode.RET):
        return state  # call effects live on the edge; ret has no successor
    if op is Opcode.RTCALL:
        _apply_rtcall(state, instruction, collector)
        return state

    if op in (Opcode.MOV, Opcode.MOVS) and len(ops) == 2:
        if isinstance(ops[0], Reg):
            source = ops[1]
            if isinstance(source, Reg):
                value = state.regs.get(source.reg)
            elif isinstance(source, Imm):
                value = const(source.value)
            else:
                value = _load(state, source, instruction.size,
                              sign=op is Opcode.MOVS)
            _set_reg(state, ops[0].reg, value)
        else:
            _store(state, ops[0], ops[1], instruction.size, collector)
        return state
    if op is Opcode.LEA and len(ops) == 2 and isinstance(ops[1], Mem):
        mem = ops[1]
        if mem.base is None or mem.base in (RSP, Register.RIP):
            value = None  # stack/global addresses: not in this domain
        else:
            value = _shift(state.regs.get(mem.base), mem.disp)
            if mem.index is not None:
                value = _add(value, _mul(state.regs.get(mem.index),
                                         const(mem.scale)))
        _set_reg(state, ops[0].reg, value)
        return state

    if len(ops) == 2 and isinstance(ops[0], Reg) and ops[0].reg is not RSP:
        destination = ops[0].reg
        current = state.regs.get(destination)
        if isinstance(ops[1], Reg):
            operand = state.regs.get(ops[1].reg)
        elif isinstance(ops[1], Imm):
            operand = const(ops[1].value)
        elif isinstance(ops[1], Mem):
            operand = _load(state, ops[1], instruction.size, sign=False)
        else:
            operand = None
        if op is Opcode.ADD:
            _set_reg(state, destination, _add(current, operand))
            return state
        if op is Opcode.SUB:
            if (isinstance(ops[1], Reg) and ops[1].reg is destination):
                _set_reg(state, destination, const(0))
            else:
                _set_reg(state, destination, _add(current, _neg(operand)))
            return state
        if op is Opcode.IMUL:
            _set_reg(state, destination, _mul(current, operand))
            return state
        if op is Opcode.AND and isinstance(ops[1], Imm) and ops[1].value >= 0:
            _set_reg(state, destination, num(0, ops[1].value))
            return state
        if op is Opcode.XOR and ops[0] == ops[1]:
            _set_reg(state, destination, const(0))
            return state
        if op is Opcode.SHL and isinstance(ops[1], Imm) and 0 <= ops[1].value < 40:
            _set_reg(state, destination, _mul(current, const(1 << ops[1].value)))
            return state
        if (op in (Opcode.MOD, Opcode.IMOD) and isinstance(ops[1], Imm)
                and ops[1].value > 0):
            _set_reg(state, destination, num(0, ops[1].value - 1))
            return state
        if (op in (Opcode.SHR, Opcode.SAR) and isinstance(ops[1], Imm)
                and 0 <= ops[1].value < 64 and current is not None
                and current.base == "num" and current.lo is not None
                and current.lo >= 0):
            shift = ops[1].value
            hi = None if current.hi is None else current.hi >> shift
            _set_reg(state, destination, num(current.lo >> shift, hi,
                                             widened=current.widened))
            return state
    if op in SETCC_CONDITIONS and ops and isinstance(ops[0], Reg):
        _set_reg(state, ops[0].reg, num(0, 1))
        return state
    if op is Opcode.NEG and ops and isinstance(ops[0], Reg):
        _set_reg(state, ops[0].reg, _neg(state.regs.get(ops[0].reg)))
        return state

    for register in instruction.regs_written():
        if register is RSP:
            state.havoc = True
            state.regs.clear()
            state.slots.clear()
            return state
        state.regs.pop(register, None)
    return state


def transfer_block(state: RangeState, instructions,
                   collector: Optional[SummaryCollector] = None) -> RangeState:
    """Forward block transfer on a copy of *state*."""
    result = state.copy()
    for instruction in instructions:
        if instruction.opcode is Opcode.RET and collector is not None:
            collector.note_return(result.reg(RAX))
        apply_instruction(result, instruction, collector)
    return result


# -- summary application (the interprocedural call edge) --------------------


def _instantiate(returned: Optional[RangeVal], args: List[Optional[RangeVal]],
                 site: int, state: RangeState) -> Optional[RangeVal]:
    """Substitute call-site facts into a summary's return value."""
    if returned is None:
        return None
    if returned.base == "num":
        return returned
    if returned.base == "arg":
        if returned.ident >= len(args):
            return None
        value = args[returned.ident]
        if returned.scale != 1:
            value = _mul(value, const(returned.scale))
        return _add(value, num(returned.lo, returned.hi, returned.stride))
    if returned.base == "alloc":
        if returned.fresh:
            size_lo, size_hi = returned.size_lo, returned.size_hi
            if returned.size_args:
                size: Optional[RangeVal] = const(1)
                for index in returned.size_args:
                    size = _mul(size, args[index] if index < len(args) else None)
                if size is not None and size.base == "num":
                    size_lo, size_hi = size.lo, size.hi
                else:
                    size_lo = size_hi = None
            state.freed[site] = FREED_NO
            return RangeVal("alloc", site, returned.lo, returned.hi,
                            returned.stride, size_lo, size_hi, fresh=True)
        # An object allocated somewhere inside the callee (or earlier):
        # its free-history is invisible here, so never claim "not freed".
        if state.freed_state(returned.ident) == FREED_NO:
            state.freed[returned.ident] = FREED_MAYBE
        return replace(returned, fresh=False)
    return None


def apply_call(state: RangeState, instruction: Instruction, summary,
               collector: Optional[SummaryCollector] = None) -> RangeState:
    """Apply a direct call's effect (on the fall-through edge) using the
    callee's :class:`~repro.analysis.callgraph.FunctionSummary`.  A None
    (or widened) summary is the unknown-callee worst case."""
    state = state.copy()
    if state.havoc:
        return state
    if summary is None or summary.widened:
        state.regs.clear()
        state.slots.clear()
        _demote_freed(state)
        if collector is not None:
            collector.unknown_stores = True
            collector.frees_other = True
        return state
    args = [state.regs.get(register) for register in ARG_REGS]
    for index in summary.frees_args:
        if index < len(args):
            _free_value(state, args[index], collector)
    if summary.frees_other:
        if collector is not None:
            collector.frees_other = True
        _demote_freed(state)
    if summary.stack_stores or summary.unknown_stores:
        state.slots.clear()
        if collector is not None:
            collector.unknown_stores = True
    else:
        for index in summary.pointer_store_args:
            value = args[index] if index < len(args) else None
            if value is not None and value.base == "alloc":
                continue  # provably a heap object: slots survive
            if value is not None and value.base == "arg":
                if collector is not None:
                    collector.pointer_store_args.add(value.ident)
                continue
            state.slots.clear()
            if collector is not None:
                collector.unknown_stores = True
            break
    for register in summary.clobbered:
        state.regs.pop(register, None)
    result = _instantiate(summary.returns, args, instruction.address, state)
    if result is not None:
        state.regs[RAX] = result
    return state


# -- the interprocedural driver ---------------------------------------------


def analyze_function(graph, function, boundary: RangeState, summaries,
                     collector: Optional[SummaryCollector] = None,
                     ) -> Dict[int, RangeState]:
    """Solve one function's blocks forward from *boundary* at its entry.

    Other roots inside the function (indirect-entry blocks) are seeded
    with HAVOC.  Returns block-entry states for the function's members.
    """
    from repro.analysis import solver

    members = function.blocks

    def transfer(node: int, state: RangeState) -> RangeState:
        return transfer_block(state, graph.block_at(node).instructions,
                              collector)

    def edge(source: int, sink: int, state: RangeState) -> RangeState:
        last = graph.block_at(source).instructions[-1]
        if last.opcode is Opcode.CALL:
            target = last.jump_target()
            return apply_call(state, last,
                              summaries.get(target) if summaries else None,
                              collector)
        if last.opcode is Opcode.CALLR:
            return apply_call(state, last, None, collector)
        return state

    boundaries = {function.entry: boundary}
    for root in graph.roots:
        if root in members and root != function.entry:
            boundaries[root] = HAVOC
    facts = solver.solve(
        graph,
        direction="forward",
        boundary=HAVOC,
        transfer=transfer,
        join=join_state,
        edge=edge,
        roots=boundaries,
        boundaries=boundaries,
    )
    return {start: state for start, state in facts.items()
            if start in members and state is not None}


def compute_range_facts(graph, call_graph, summaries) -> Dict[int, RangeState]:
    """Top-down concrete pass: block start -> entry :class:`RangeState`.

    Functions are visited callers-first so each callee's entry state is
    the join of its (analyzed) call sites' argument facts; unknown or
    recursive callers degrade the entry to the unknown-history boundary.
    """
    facts: Dict[int, RangeState] = {}
    entry_states: Dict[int, Optional[RangeState]] = {}
    unknown_entry = {
        entry for entry, function in call_graph.functions.items()
        if function.recursive or call_graph.has_indirect_calls
    }
    program_entry = graph.control_flow.entry
    for entry in call_graph.callers_first:
        function = call_graph.functions[entry]
        if function.widened:
            for callee in function.calls.values():
                unknown_entry.add(callee)  # its call-site facts are lost
            continue
        if entry == program_entry:
            boundary = entry_state()
        elif entry in unknown_entry or entry not in entry_states:
            boundary = entry_state(unknown=True)
        else:
            boundary = entry_states[entry] or entry_state(unknown=True)
        local = analyze_function(graph, function, boundary, summaries)
        for start, state in local.items():
            if start in facts:
                facts[start] = HAVOC  # shared block: ambiguous frame
            else:
                facts[start] = state
        for block_start, callee in function.calls.items():
            state = local.get(block_start)
            if state is None or state.havoc:
                unknown_entry.add(callee)
                continue
            at_call = transfer_block(state,
                                     graph.block_at(block_start).instructions)
            callee_entry = RangeState(
                regs={register: value for register, value in (
                    (r, at_call.regs.get(r)) for r in ARG_REGS)
                    if value is not None},
                freed=dict(at_call.freed),
                freed_unknown=at_call.freed_unknown,
            )
            current = entry_states.get(callee)
            if callee in entry_states:
                entry_states[callee] = join_state(current, callee_entry)
            else:
                entry_states[callee] = callee_entry
    return facts


# -- access classification (shared by elimination and the auditor) ----------


@dataclass(frozen=True)
class AccessVerdict:
    """What the range facts prove about one memory access."""

    kind: str  # "in" | "must-oob" | "may-oob"
    offset_lo: Optional[int]
    offset_hi: Optional[int]
    size_lo: Optional[int]
    size_hi: Optional[int]
    width: int


def classify_access(state: Optional[RangeState], mem: Mem,
                    width: int) -> Optional[AccessVerdict]:
    """Classify an access through an allocation-derived base register.

    ``"in"`` (provably in bounds of a provably-unfreed object — the
    elimination verdict) requires exact knowledge; ``"must-oob"`` holds
    whenever every possible offset misses the object; ``"may-oob"`` is
    only reported for unwidened, bounded offsets.  None = no verdict.
    """
    if state is None or state.havoc:
        return None
    if mem.base is None or mem.base in (RSP, Register.RIP):
        return None
    base = state.regs.get(mem.base)
    if base is None or base.base != "alloc":
        return None
    offset: Optional[RangeVal] = num(base.lo, base.hi, base.stride,
                                     widened=base.widened)
    if mem.index is not None:
        index = state.regs.get(mem.index)
        if index is None or index.base != "num":
            return None
        offset = _add(offset, _mul(index, const(mem.scale)))
    offset = _shift(offset, mem.disp)
    if offset is None:
        return None
    lo, hi = offset.lo, offset.hi
    size_lo, size_hi = base.size_lo, base.size_hi
    verdict = AccessVerdict("may-oob", lo, hi, size_lo, size_hi, width)
    if (lo is not None and hi is not None and size_lo is not None
            and lo >= 0 and hi + width <= size_lo
            and state.freed_state(base.ident) == FREED_NO):
        return replace(verdict, kind="in")
    if lo is not None and size_hi is not None and lo >= size_hi:
        return replace(verdict, kind="must-oob")
    if hi is not None and hi + width <= 0:
        return replace(verdict, kind="must-oob")
    if offset.widened or lo is None or hi is None or size_lo is None:
        return None
    if hi + width > size_lo or lo < 0:
        return verdict  # bounded, unwidened, and overlapping the edge
    return None


# -- validation (the ``analysis.ranges`` fault-point contract) --------------


def validate_range_facts(facts: Dict[int, RangeState]) -> bool:
    """Structural invariants over a computed solution.  The
    ``analysis.ranges`` payload corrupts solutions to prove the consumer
    degrades to intra-procedural facts instead of mis-eliminating."""
    for start, state in facts.items():
        if not isinstance(state, RangeState) or not isinstance(state.rsp_delta, int):
            return False
        if state.havoc:
            continue
        for register, value in state.regs.items():
            if register not in GPRS or not _valid_value(value):
                return False
        for key, value in state.slots.items():
            if not isinstance(key, int) or not _valid_value(value):
                return False
        for site, freed in state.freed.items():
            if not isinstance(site, int) or freed not in (
                    FREED_NO, FREED_MAYBE, FREED_YES):
                return False
    return True


def _corrupt_range_facts(facts: Dict[int, RangeState], payload=None) -> None:
    """Fault payload for ``analysis.ranges``: plant a violation that
    :func:`validate_range_facts` must catch (or, with an empty solution,
    an impossible entry)."""
    import random

    rng = random.Random(payload)
    if not facts:
        facts[-1] = "not-a-state"  # type: ignore[assignment]
        return
    start = rng.choice(sorted(facts))
    state = facts[start]
    if state.havoc:
        facts[start] = "not-a-state"  # type: ignore[assignment]
        return
    choice = rng.randrange(3)
    if choice == 0:
        state.regs[RSP] = RangeVal("num", 0, 5, 1)  # lo > hi, bad register
    elif choice == 1:
        state.freed[0] = "definitely"
    else:
        state.slots["frame"] = const(0)  # type: ignore[index]


def _valid_value(value) -> bool:
    if not isinstance(value, RangeVal):
        return False
    if value.base not in ("num", "alloc", "arg"):
        return False
    if value.lo is not None and value.hi is not None and value.lo > value.hi:
        return False
    if (value.size_lo is not None and value.size_hi is not None
            and value.size_lo > value.size_hi):
        return False
    if not isinstance(value.scale, int) or value.scale < 1:
        return False
    return True
