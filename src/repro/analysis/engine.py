"""The dataflow driver: one call produces every fact the pipeline uses.

:func:`analyze_control_flow` builds the block graph and runs the three
client analyses (provenance, liveness, dominators) to fixpoint,
returning a :class:`DataflowInfo` bundle.  The bundle is *optional*
everywhere it is consumed: when an analysis fails — a genuine solver
bug, or the ``analysis.fixpoint`` / ``analysis.facts`` fault points
exercising that path — the bundle degrades to ``fallback=True`` and the
pipeline silently reverts to the syntactic elimination rule and
block-local liveness.  A corrupted analysis may cost precision, never
soundness, and the fallback is accounted (``analysis.fallbacks``
telemetry, ``AnalysisStats.analysis_fallbacks``) so the fault campaign
classifies such runs as DEGRADED rather than silent.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set

from repro.errors import InstrumentationError
from repro.faults.injector import fault_point, payload_rng
from repro.isa.registers import RSP
from repro.rewriter.cfg import BasicBlock, ControlFlowInfo
from repro.analysis import dominators as dominators_mod
from repro.analysis import liveness as liveness_mod
from repro.analysis import provenance as provenance_mod
from repro.analysis.graph import BlockGraph, build_block_graph


@dataclass
class DataflowInfo:
    """Everything the fixpoint analyses proved about one binary."""

    graph: BlockGraph
    #: block start -> register provenance facts at block entry.
    entry_facts: Dict[int, provenance_mod.RegFacts] = field(default_factory=dict)
    #: block start -> effective live-out (registers + FLAGS sentinel).
    live_out: Dict[int, FrozenSet] = field(default_factory=dict)
    #: block start -> dominating block starts (reflexive).
    dominators: Dict[int, FrozenSet[int]] = field(default_factory=dict)
    #: True when the analyses failed and consumers must use the
    #: syntactic/block-local fallbacks.
    fallback: bool = False
    fallback_reason: str = ""

    # -- per-site queries ---------------------------------------------------

    def iter_block_facts(self, block: BasicBlock):
        """Yield ``(instruction, facts-before-it)`` walking *block*.

        Yields ``(instruction, None)`` for every instruction when the
        block was never reached by the solver (or after a fallback) —
        the conservative "know nothing" answer.
        """
        entry = None if self.fallback else self.entry_facts.get(block.start)
        if entry is None:
            for instruction in block.instructions:
                yield instruction, None
            return
        facts = dict(entry)
        for instruction in block.instructions:
            yield instruction, facts
            provenance_mod.apply_instruction(facts, instruction)

    def facts_before(self, address: int) -> Optional[provenance_mod.RegFacts]:
        """Provenance facts immediately before the instruction at *address*."""
        block = self.graph.control_flow.block_of.get(address)
        if block is None:
            return None
        for instruction, facts in self.iter_block_facts(block):
            if instruction.address == address:
                return facts
        return None

    def dead_registers_after(self, block: BasicBlock, index: int) -> Optional[FrozenSet]:
        """Globally-informed replacement for ``regusage.dead_registers_after``.

        None when liveness is unavailable (callers then use the
        block-local rule).
        """
        if self.fallback:
            return None
        live_out = self.live_out.get(block.start)
        if live_out is None:
            return None
        return liveness_mod.dead_registers_at(block.instructions, index, live_out)

    def flags_dead_after(self, block: BasicBlock, index: int) -> Optional[bool]:
        """Whether no later instruction reads the flags written at
        ``block.instructions[index]`` — True lets check code clobber
        them without a spill. ``None`` (unknown) when the global
        liveness solution is unavailable (fallback mode), which callers
        must treat as "assume live"."""
        if self.fallback:
            return None
        live_out = self.live_out.get(block.start)
        if live_out is None:
            return None
        return liveness_mod.flags_dead_at(block.instructions, index, live_out)

    def dominated_redundant(self, sites: List) -> Set[int]:
        """Addresses of candidate sites whose check a dominating,
        identical, kept check already performs."""
        if self.fallback or not self.dominators:
            return set()
        return dominators_mod.find_dominated_redundant(
            self.graph, self.dominators, sites
        )


def _corrupt_facts(entry_facts: Dict[int, provenance_mod.RegFacts]) -> None:
    """The ``analysis.facts`` payload: smash one block's solution.

    Un-pins the RSP invariant (or plants a non-lattice value) so the
    validation pass must catch it before any elimination trusts it.
    """
    if not entry_facts:
        return
    rng = payload_rng()
    block = sorted(entry_facts)[rng.randrange(len(entry_facts))]
    if rng.random() < 0.5:
        entry_facts[block][RSP] = provenance_mod.TOP
    else:
        entry_facts[block][RSP] = ("corrupt", rng.randrange(1 << 16))


def analyze_control_flow(
    control_flow: ControlFlowInfo, telemetry=None
) -> DataflowInfo:
    """Run the fixpoint analyses; degrade to a fallback bundle on failure."""
    from repro.telemetry.hub import coerce

    tele = coerce(telemetry)
    graph = build_block_graph(control_flow)
    with tele.span("dataflow", blocks=len(graph.blocks)):
        try:
            entry_facts = provenance_mod.compute_entry_facts(graph)
            if fault_point("analysis.facts"):
                _corrupt_facts(entry_facts)
            if not provenance_mod.validate_facts(entry_facts):
                raise InstrumentationError(
                    "provenance facts failed validation (corrupted solution)"
                )
            live_out = liveness_mod.compute_live_out(graph)
            dominators = dominators_mod.compute_dominators(graph)
        except InstrumentationError as error:
            tele.count("analysis.fallbacks")
            tele.event("analysis_fallback", reason=str(error))
            return DataflowInfo(
                graph=graph, fallback=True, fallback_reason=str(error)
            )
    tele.count("analysis.dataflow_blocks", len(graph.blocks))
    return DataflowInfo(
        graph=graph,
        entry_facts=entry_facts,
        live_out=live_out,
        dominators=dominators,
    )
