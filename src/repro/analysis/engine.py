"""The dataflow driver: one call produces every fact the pipeline uses.

:func:`analyze_control_flow` builds the block graph and runs the three
client analyses (provenance, liveness, dominators) to fixpoint,
returning a :class:`DataflowInfo` bundle.  The bundle is *optional*
everywhere it is consumed: when an analysis fails — a genuine solver
bug, or the ``analysis.fixpoint`` / ``analysis.facts`` fault points
exercising that path — the bundle degrades to ``fallback=True`` and the
pipeline silently reverts to the syntactic elimination rule and
block-local liveness.  A corrupted analysis may cost precision, never
soundness, and the fallback is accounted (``analysis.fallbacks``
telemetry, ``AnalysisStats.analysis_fallbacks``) so the fault campaign
classifies such runs as DEGRADED rather than silent.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set

from repro.errors import InstrumentationError
from repro.faults.injector import fault_point, payload_rng
from repro.isa.registers import RSP
from repro.rewriter.cfg import BasicBlock, ControlFlowInfo
from repro.analysis import callgraph as callgraph_mod
from repro.analysis import dominators as dominators_mod
from repro.analysis import liveness as liveness_mod
from repro.analysis import provenance as provenance_mod
from repro.analysis import ranges as ranges_mod
from repro.analysis.graph import BlockGraph, build_block_graph


@dataclass
class DataflowInfo:
    """Everything the fixpoint analyses proved about one binary."""

    graph: BlockGraph
    #: block start -> register provenance facts at block entry.
    entry_facts: Dict[int, provenance_mod.RegFacts] = field(default_factory=dict)
    #: block start -> effective live-out (registers + FLAGS sentinel).
    live_out: Dict[int, FrozenSet] = field(default_factory=dict)
    #: block start -> dominating block starts (reflexive).
    dominators: Dict[int, FrozenSet[int]] = field(default_factory=dict)
    #: True when the analyses failed and consumers must use the
    #: syntactic/block-local fallbacks.
    fallback: bool = False
    fallback_reason: str = ""
    #: Interprocedural layer (None when disabled or degraded): the
    #: recovered call graph, the per-function summaries, and the
    #: block-entry range states of the top-down concrete pass.
    callgraph: Optional[callgraph_mod.CallGraph] = None
    summaries: Optional[Dict[int, callgraph_mod.FunctionSummary]] = None
    range_facts: Optional[Dict[int, ranges_mod.RangeState]] = None
    #: True when only the interprocedural layer failed — the
    #: intra-procedural facts above are still valid and in use.
    interproc_fallback: bool = False
    interproc_reason: str = ""

    # -- per-site queries ---------------------------------------------------

    def iter_block_facts(self, block: BasicBlock):
        """Yield ``(instruction, facts-before-it)`` walking *block*.

        Yields ``(instruction, None)`` for every instruction when the
        block was never reached by the solver (or after a fallback) —
        the conservative "know nothing" answer.
        """
        entry = None if self.fallback else self.entry_facts.get(block.start)
        if entry is None:
            for instruction in block.instructions:
                yield instruction, None
            return
        facts = dict(entry)
        for instruction in block.instructions:
            yield instruction, facts
            provenance_mod.apply_instruction(facts, instruction)

    def facts_before(self, address: int) -> Optional[provenance_mod.RegFacts]:
        """Provenance facts immediately before the instruction at *address*."""
        block = self.graph.control_flow.block_of.get(address)
        if block is None:
            return None
        for instruction, facts in self.iter_block_facts(block):
            if instruction.address == address:
                return facts
        return None

    def dead_registers_after(self, block: BasicBlock, index: int) -> Optional[FrozenSet]:
        """Globally-informed replacement for ``regusage.dead_registers_after``.

        None when liveness is unavailable (callers then use the
        block-local rule).
        """
        if self.fallback:
            return None
        live_out = self.live_out.get(block.start)
        if live_out is None:
            return None
        return liveness_mod.dead_registers_at(block.instructions, index, live_out)

    def flags_dead_after(self, block: BasicBlock, index: int) -> Optional[bool]:
        """Whether no later instruction reads the flags written at
        ``block.instructions[index]`` — True lets check code clobber
        them without a spill. ``None`` (unknown) when the global
        liveness solution is unavailable (fallback mode), which callers
        must treat as "assume live"."""
        if self.fallback:
            return None
        live_out = self.live_out.get(block.start)
        if live_out is None:
            return None
        return liveness_mod.flags_dead_at(block.instructions, index, live_out)

    def range_before(self, address: int) -> Optional[ranges_mod.RangeState]:
        """Range state immediately before the instruction at *address*.

        None when the interprocedural layer is unavailable, the block
        was never reached, or the state is havoc.
        """
        if self.fallback or self.range_facts is None:
            return None
        block = self.graph.control_flow.block_of.get(address)
        if block is None:
            return None
        entry = self.range_facts.get(block.start)
        if entry is None or entry.havoc:
            return None
        state = entry.copy()
        for instruction in block.instructions:
            if instruction.address == address:
                return state
            ranges_mod.apply_instruction(state, instruction)
            if state.havoc:
                return None
        return None

    def dominated_redundant(self, sites: List) -> Set[int]:
        """Addresses of candidate sites whose check a dominating,
        identical, kept check already performs."""
        if self.fallback or not self.dominators:
            return set()
        return dominators_mod.find_dominated_redundant(
            self.graph, self.dominators, sites
        )


def _corrupt_facts(entry_facts: Dict[int, provenance_mod.RegFacts]) -> None:
    """The ``analysis.facts`` payload: smash one block's solution.

    Un-pins the RSP invariant (or plants a non-lattice value) so the
    validation pass must catch it before any elimination trusts it.
    """
    if not entry_facts:
        return
    rng = payload_rng()
    block = sorted(entry_facts)[rng.randrange(len(entry_facts))]
    if rng.random() < 0.5:
        entry_facts[block][RSP] = provenance_mod.TOP
    else:
        entry_facts[block][RSP] = ("corrupt", rng.randrange(1 << 16))


def analyze_control_flow(
    control_flow: ControlFlowInfo, telemetry=None, interproc: bool = True
) -> DataflowInfo:
    """Run the fixpoint analyses; degrade to a fallback bundle on failure.

    With *interproc* (the default) the call-graph/summary and range
    passes run first; their failures — genuine divergence or the
    ``analysis.callgraph`` / ``analysis.ranges`` fault points — degrade
    only the interprocedural layer (``interproc_fallback=True``,
    ``analysis.interproc_fallbacks`` telemetry) while the
    intra-procedural facts below survive unchanged.
    """
    from repro.telemetry.hub import coerce

    tele = coerce(telemetry)
    graph = build_block_graph(control_flow)
    call_graph = summaries = range_facts = None
    interproc_fallback = False
    interproc_reason = ""

    def degrade_interproc(error: InstrumentationError) -> None:
        nonlocal interproc_fallback, interproc_reason
        interproc_fallback = True
        interproc_reason = str(error)
        tele.count("analysis.interproc_fallbacks")
        tele.event("interproc_fallback", reason=str(error))

    with tele.span("dataflow", blocks=len(graph.blocks)):
        # A transfer to a non-block-start address could re-enter a block
        # mid-frame, invalidating every stack-slot fact; the
        # intra-procedural layer tolerates this, the summaries cannot.
        if interproc and not graph.leaky:
            try:
                call_graph_local = callgraph_mod.build_call_graph(graph)
                summaries_local = callgraph_mod.compute_summaries(
                    call_graph_local, graph
                )
                if fault_point("analysis.callgraph"):
                    callgraph_mod._corrupt_summaries(
                        summaries_local, payload_rng().random()
                    )
                if not callgraph_mod.validate_summaries(
                        call_graph_local, summaries_local):
                    raise InstrumentationError(
                        "function summaries failed validation (corrupted)"
                    )
                call_graph, summaries = call_graph_local, summaries_local
            except InstrumentationError as error:
                degrade_interproc(error)
        try:
            entry_facts = provenance_mod.compute_entry_facts(
                graph, summaries=summaries
            )
            if fault_point("analysis.facts"):
                _corrupt_facts(entry_facts)
            if not provenance_mod.validate_facts(entry_facts):
                raise InstrumentationError(
                    "provenance facts failed validation (corrupted solution)"
                )
            live_out = liveness_mod.compute_live_out(graph)
            dominators = dominators_mod.compute_dominators(graph)
        except InstrumentationError as error:
            tele.count("analysis.fallbacks")
            tele.event("analysis_fallback", reason=str(error))
            return DataflowInfo(
                graph=graph, fallback=True, fallback_reason=str(error)
            )
        if summaries is not None:
            try:
                range_facts_local = ranges_mod.compute_range_facts(
                    graph, call_graph, summaries
                )
                if fault_point("analysis.ranges"):
                    ranges_mod._corrupt_range_facts(
                        range_facts_local, payload_rng().random()
                    )
                if not ranges_mod.validate_range_facts(range_facts_local):
                    raise InstrumentationError(
                        "range facts failed validation (corrupted solution)"
                    )
                range_facts = range_facts_local
            except InstrumentationError as error:
                call_graph = summaries = range_facts = None
                degrade_interproc(error)
    tele.count("analysis.dataflow_blocks", len(graph.blocks))
    if summaries is not None:
        tele.count("analysis.functions", len(summaries))
    return DataflowInfo(
        graph=graph,
        entry_facts=entry_facts,
        live_out=live_out,
        dominators=dominators,
        callgraph=call_graph,
        summaries=summaries,
        range_facts=range_facts,
        interproc_fallback=interproc_fallback,
        interproc_reason=interproc_reason,
    )
