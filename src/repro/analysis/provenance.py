"""Pointer-provenance analysis: which registers provably avoid the heap.

Per-register lattice (the flow-sensitive generalisation of the syntactic
``can_eliminate`` rule)::

                      TOP  (unknown: may be a low-fat heap pointer)
                     /   \\
               NONHEAP    HEAP   (HEAP: derived from a loaded value or a
              /   |   \\          runtime-call result — *maybe* low-fat)
         STACK  GLOBAL  CONST
              \\   |   /
                BOTTOM   (unreachable; represented as a missing state)

Every non-heap element carries an *offset bound*: the largest absolute
constant displacement accumulated since the value left its anchor (RSP,
RIP, or an absolute immediate).  The anchor lives in non-fat region 0 of
the layout, and region 0 is 32 GB wide, so ``anchor ± bound ± disp``
stays non-fat as long as ``bound + |disp|`` fits in a signed 32-bit
offset — the same ±2 GB argument the syntactic rule uses for bare
RSP/RIP/absolute operands (see ``repro/layout.py``).

Transfer functions cover exactly the value flows MiniC-grade code
generators emit — ``mov`` register copies, ``lea``, add/sub of a
constant — and send everything else to TOP/HEAP.  Precision lost here
only costs a check, never a missed error.
"""

from __future__ import annotations

import enum
from typing import Dict, Optional, Tuple

from repro.isa.instructions import Instruction
from repro.isa.opcodes import Opcode, SETCC_CONDITIONS
from repro.isa.operands import INT32_MAX, Imm, Mem, Reg
from repro.isa.registers import GPRS, RAX, RSP, Register


class Kind(enum.IntEnum):
    """Lattice element kinds (BOTTOM is the absent whole-block state)."""

    STACK = 1    # derived from RSP
    GLOBAL = 2   # derived from RIP (PIC data access)
    CONST = 3    # derived from a 32-bit absolute address/immediate
    NONHEAP = 4  # join of distinct non-heap anchors: still provably safe
    HEAP = 5     # loaded / allocator-returned: may point into a region
    TOP = 6      # no information

    @property
    def is_nonheap(self) -> bool:
        """True when a pointer of this kind can never address the low-fat
        heap — the justification for eliminating its checks."""
        return self in (Kind.STACK, Kind.GLOBAL, Kind.CONST, Kind.NONHEAP)


#: One lattice value: ``(kind, offset bound)``.  The bound is meaningful
#: only for non-heap kinds and saturates to TOP past INT32_MAX.
Prov = Tuple[Kind, int]

TOP: Prov = (Kind.TOP, 0)
HEAP: Prov = (Kind.HEAP, 0)
STACK0: Prov = (Kind.STACK, 0)

#: Register facts at one program point.  A missing key means TOP — the
#: dict only carries the registers we know something about.  RSP is
#: always present and always ``STACK0`` (the pinned invariant that
#: :func:`validate_facts` checks).
RegFacts = Dict[Register, Prov]


def entry_facts() -> RegFacts:
    """The boundary fact: nothing known except the stack pointer."""
    return {RSP: STACK0}


def _join_bound(a: int, b: int) -> int:
    """Join offset bounds, *widening* to the next power of two when they
    differ.  The rounding makes the bound component a finite ascending
    chain (≤ 32 steps to saturation), so a loop that keeps adding a
    constant to a pointer converges in a handful of fixpoint rounds
    instead of creeping toward INT32_MAX eight bytes at a time."""
    if a == b:
        return a
    widened = 1
    largest = max(a, b)
    while widened < largest:
        widened <<= 1
    return min(widened, INT32_MAX)


def join_value(a: Prov, b: Prov) -> Prov:
    """Lattice join of two provenance values: equal values stand, equal
    kinds widen the bound, anything else goes to the kind's top."""
    if a == b:
        return a
    kind_a, bound_a = a
    kind_b, bound_b = b
    if kind_a is Kind.TOP or kind_b is Kind.TOP:
        return TOP
    if kind_a.is_nonheap and kind_b.is_nonheap:
        kind = kind_a if kind_a is kind_b else Kind.NONHEAP
        return (kind, _join_bound(bound_a, bound_b))
    if kind_a is Kind.HEAP and kind_b is Kind.HEAP:
        return HEAP
    return TOP  # non-heap joined with heap-maybe: nothing provable


def join_facts(a: RegFacts, b: RegFacts) -> RegFacts:
    """Pointwise join of two register-fact maps; a register absent from
    either side is unknown (dropped) in the result."""
    merged: RegFacts = {}
    for register, value in a.items():
        other = b.get(register)
        if other is None:
            continue  # missing = TOP, and TOP entries are not stored
        joined = join_value(value, other)
        if joined != TOP:
            merged[register] = joined
    merged[RSP] = STACK0
    return merged


def _widen(value: Prov, delta: int) -> Prov:
    """Accumulate a constant offset; saturate past the ±2 GB window."""
    kind, bound = value
    if not kind.is_nonheap:
        return value  # heap ± const is still heap-maybe; TOP stays TOP
    bound += abs(delta)
    if bound > INT32_MAX:
        return TOP
    return (kind, bound)


def _set(facts: RegFacts, register: Register, value: Prov) -> None:
    if register is RSP:
        return  # RSP stays pinned to STACK0
    if value == TOP:
        facts.pop(register, None)
    else:
        facts[register] = value


def _mem_value(facts: RegFacts, mem: Mem) -> Prov:
    """The provenance of ``lea``'s computed address."""
    if mem.base is Register.RIP:
        base: Prov = (Kind.GLOBAL, 0)
    elif mem.base is not None:
        base = facts.get(mem.base, TOP)
    else:
        base = (Kind.CONST, 0)
    if mem.index is not None:
        return TOP  # unbounded scaled index: could reach any region
    return _widen(base, mem.disp)


def apply_instruction(facts: RegFacts, instruction: Instruction) -> RegFacts:
    """Destructively apply one instruction's transfer; returns *facts*.

    Callers walking a block for per-site queries must copy the block
    entry fact first.
    """
    op = instruction.opcode
    ops = instruction.operands

    if op in (Opcode.MOV, Opcode.MOVS) and len(ops) == 2 and isinstance(ops[0], Reg):
        destination = ops[0].reg
        source = ops[1]
        if isinstance(source, Reg):
            _set(facts, destination, facts.get(source.reg, TOP))
        elif isinstance(source, Imm):
            if abs(source.value) <= INT32_MAX:
                _set(facts, destination, (Kind.CONST, 0))
            else:
                _set(facts, destination, TOP)
        elif isinstance(source, Mem):
            _set(facts, destination, HEAP)  # a loaded value may be a heap ptr
        return facts
    if op is Opcode.LEA and len(ops) == 2 and isinstance(ops[1], Mem):
        _set(facts, ops[0].reg, _mem_value(facts, ops[1]))
        return facts
    if op in (Opcode.ADD, Opcode.SUB) and len(ops) == 2 and isinstance(ops[0], Reg):
        destination = ops[0].reg
        if isinstance(ops[1], Imm):
            _set(facts, destination, _widen(facts.get(destination, TOP), ops[1].value))
            return facts
        # fall through: reg/mem addend destroys the anchor
    if op is Opcode.XOR and len(ops) == 2 and ops[0] == ops[1]:
        _set(facts, ops[0].reg, (Kind.CONST, 0))
        return facts
    if op in SETCC_CONDITIONS and ops and isinstance(ops[0], Reg):
        _set(facts, ops[0].reg, (Kind.CONST, 1))
        return facts
    if op is Opcode.POP and ops and isinstance(ops[0], Reg):
        _set(facts, ops[0].reg, HEAP)  # reloaded spill: trust nothing
        return facts
    if op is Opcode.RTCALL:
        for register in instruction.regs_written():
            _set(facts, register, HEAP if register is RAX else TOP)
        return facts

    for register in instruction.regs_written():
        _set(facts, register, TOP)
    return facts


def transfer_block(facts: RegFacts, instructions) -> RegFacts:
    """Forward block transfer: apply every instruction's effect on the
    register facts in order, returning the block-exit facts."""
    result = dict(facts)
    for instruction in instructions:
        apply_instruction(result, instruction)
    result[RSP] = STACK0
    return result


def call_edge(facts: RegFacts) -> RegFacts:
    """Facts on a ``call``/``callr`` fall-through edge: the unknown
    callee may leave anything in any register; only RSP survives (the
    matched push/pop of the return address restores it)."""
    return entry_facts()


def operand_provenance(facts: RegFacts, mem: Mem) -> Optional[Prov]:
    """The provable non-heap provenance of an *accessed* operand, if any.

    Returns the base register's lattice value when it justifies dropping
    the check — non-heap anchor, no index register, and the accumulated
    bound plus the operand displacement still inside the ±2 GB window —
    and None otherwise.
    """
    if mem.index is not None:
        return None
    if mem.base is None or mem.base is Register.RIP:
        return None  # already handled by the syntactic rule
    value = facts.get(mem.base, TOP)
    kind, bound = value
    if not kind.is_nonheap:
        return None
    if bound + abs(mem.disp) > INT32_MAX:
        return None
    return value


def compute_entry_facts(graph, summaries=None) -> Dict[int, RegFacts]:
    """Solve the forward problem: block entry facts per start address.

    Call-terminated blocks propagate the conservative boundary fact over
    their fall-through edge — an unknown callee may leave anything in
    any register; only the stack pointer provably survives (the matched
    ``call``/``ret`` restores it).  When interprocedural *summaries*
    (:mod:`repro.analysis.callgraph`) are available, a direct call to a
    precisely-summarized callee only wipes the callee's clobber set: a
    register the callee provably never writes keeps its value, hence its
    provenance.  ``callr`` stays fully conservative either way.
    """
    from repro.analysis import solver

    def transfer(node, facts: RegFacts) -> RegFacts:
        return transfer_block(facts, graph.block_at(node).instructions)

    def edge(source, sink, fact: RegFacts) -> RegFacts:
        last = graph.block_at(source).instructions[-1]
        if last.opcode is Opcode.CALL and summaries is not None:
            target = last.jump_target()
            summary = summaries.get(target) if target is not None else None
            if summary is not None and not summary.widened:
                kept = {
                    register: value
                    for register, value in fact.items()
                    if register not in summary.clobbered
                }
                kept[RSP] = STACK0
                return kept
        if last.opcode in (Opcode.CALL, Opcode.CALLR):
            return call_edge(fact)
        return fact

    return solver.solve(
        graph,
        direction="forward",
        boundary=entry_facts(),
        transfer=transfer,
        join=join_facts,
        edge=edge,
    )


def validate_facts(facts_by_block: Dict[int, RegFacts]) -> bool:
    """Cheap structural invariants over a computed solution.

    The ``analysis.facts`` fault point corrupts solutions to prove the
    consumer degrades instead of mis-eliminating: every stored value must
    be a genuine lattice element and RSP must still be pinned to the
    stack anchor.
    """
    for facts in facts_by_block.values():
        if not isinstance(facts, dict):
            return False
        if facts.get(RSP) != STACK0:
            return False
        for register, value in facts.items():
            if register not in GPRS:
                return False
            if (
                not isinstance(value, tuple)
                or len(value) != 2
                or not isinstance(value[0], Kind)
                or not isinstance(value[1], int)
                or not 0 <= value[1] <= INT32_MAX
            ):
                return False
    return True
