"""Block-level successor/predecessor edges over the recovered CFG.

:func:`repro.rewriter.cfg.recover_control_flow` produces basic blocks and
an over-approximated jump-target set, but no explicit edges — batching
only needs block membership.  The dataflow analyses need real edges, so
this module derives them, erring (like the recovery itself) on the side
of *more* edges:

- a direct jump contributes its target block;
- a conditional jump contributes target *and* fall-through;
- an indirect jump (``jmpr``) contributes an edge to **every** recovered
  target block — the target set over-approximates all indirect
  destinations by construction;
- call-terminated blocks (``call``/``callr``/``rtcall``) contribute the
  fall-through (return-point) edge; the callee's effect is modelled by
  the analyses' edge transfer, not by an edge into the callee;
- ``ret``/``trap`` contribute nothing.

Blocks that may be entered from outside the edge set — the binary entry,
direct call targets, every target block when an indirect call exists,
and predecessor-less blocks — are *roots*: analyses must seed them with
their most conservative boundary fact.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Set

from repro.isa.opcodes import Opcode
from repro.rewriter.cfg import BasicBlock, ControlFlowInfo

#: Opcodes transferring to an unknown callee with an eventual return.
CALL_OPCODES = frozenset({Opcode.CALL, Opcode.CALLR, Opcode.RTCALL})


@dataclass
class BlockGraph:
    """Explicit edges (by block start address) plus the root set."""

    control_flow: ControlFlowInfo
    succs: Dict[int, List[int]] = field(default_factory=dict)
    preds: Dict[int, List[int]] = field(default_factory=dict)
    roots: FrozenSet[int] = frozenset()
    #: Blocks with at least one transfer whose destination is outside the
    #: decoded text — control escapes the edge set there, so backward
    #: analyses must assume the worst at their exit.
    leaky: FrozenSet[int] = frozenset()

    @property
    def blocks(self) -> List[BasicBlock]:
        """All basic blocks in address order."""
        return self.control_flow.blocks

    def block_at(self, start: int) -> BasicBlock:
        """The block whose first instruction sits at *start* (KeyError
        for any other address — block starts are the only valid keys)."""
        return self.control_flow.block_of[start]

    def reachable_between(self, source: int, sink: int) -> Set[int]:
        """Blocks on some ``source -> sink`` path, excluding both ends.

        Used by dominated-redundancy removal: every intermediate block an
        execution may traverse between two sites is the intersection of
        what *source* reaches and what reaches *sink*.
        """
        forward = self._flood(source, self.succs)
        backward = self._flood(sink, self.preds)
        return (forward & backward) - {source, sink}

    def _flood(self, start: int, edges: Dict[int, List[int]]) -> Set[int]:
        seen: Set[int] = set()
        frontier = list(edges.get(start, ()))
        while frontier:
            node = frontier.pop()
            if node in seen:
                continue
            seen.add(node)
            frontier.extend(edges.get(node, ()))
        return seen


def build_block_graph(control_flow: ControlFlowInfo) -> BlockGraph:
    """Derive the conservative edge structure from *control_flow*."""
    starts = [block.start for block in control_flow.blocks]
    start_set = set(starts)
    succs: Dict[int, List[int]] = {start: [] for start in starts}
    preds: Dict[int, List[int]] = {start: [] for start in starts}
    target_blocks = sorted(
        address for address in control_flow.targets if address in start_set
    )
    has_indirect_call = any(
        instruction.opcode is Opcode.CALLR
        for instruction in control_flow.instructions
    )

    leaky: Set[int] = set()

    def link(source: int, sink: int) -> None:
        """Add the CFG edge source→sink, or mark *source* leaky when the
        destination is outside the decoded text (indirect/unknown)."""
        if sink not in start_set:
            leaky.add(source)  # destination outside the decoded text
            return
        if sink not in succs[source]:
            succs[source].append(sink)
            preds[sink].append(source)

    for block in control_flow.blocks:
        last = block.instructions[-1]
        fall_through = last.address + last.length
        if last.opcode is Opcode.JMP:
            target = last.jump_target()
            link(block.start, target if target is not None else -1)
        elif last.is_conditional:
            target = last.jump_target()
            link(block.start, target if target is not None else -1)
            link(block.start, fall_through)
        elif last.opcode is Opcode.JMPR:
            if not target_blocks:
                leaky.add(block.start)
            for target in target_blocks:
                link(block.start, target)
        elif last.opcode in CALL_OPCODES:
            link(block.start, fall_through)
        elif last.opcode in (Opcode.RET, Opcode.TRAP):
            pass  # no successors
        else:
            # Block split by a leader (jump target) right after it.
            link(block.start, fall_through)

    roots: Set[int] = set()
    if control_flow.entry is not None:
        roots.add(control_flow.entry)
    for instruction in control_flow.instructions:
        if instruction.opcode is Opcode.CALL:
            target = instruction.jump_target()
            if target is not None and target in start_set:
                roots.add(target)
    if has_indirect_call:
        roots.update(target_blocks)
    for start in starts:
        if not preds[start]:
            roots.add(start)
    return BlockGraph(
        control_flow, succs, preds,
        roots=frozenset(roots & start_set), leaky=frozenset(leaky),
    )
