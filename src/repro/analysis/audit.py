"""``redfat audit`` — the static memory-error scanner.

Where the rest of the pipeline *hardens* a binary so errors trap at run
time, the auditor walks the interprocedural range facts
(:mod:`repro.analysis.ranges`) and reports memory errors **without
executing**:

``oob-write`` / ``oob-read``
    An access through an allocation-derived pointer whose provable
    offset interval misses (``must``) or straddles (``may``) the
    allocation's size interval.  *must* holds whenever every possible
    offset is out of bounds — sound even on widened intervals, since
    widening only grows them.  *may* is only reported for bounded,
    unwidened intervals, which keeps ordinary (unbounded-widened) loops
    from drowning the report in noise.

``double-free``
    A ``free`` reaching an allocation whose per-site freed state is
    already ``yes`` (``must``) or ``maybe`` (``may``) on some path.

``invalid-free``
    A ``free`` of a provably non-heap value: a non-null integer, an
    interior pointer (offset provably non-zero), or a value whose
    intra-procedural provenance is stack/global.

Findings are emitted as a schema-validated JSON report
(``audit_schema.json``; the same mini JSON-Schema dialect as the
telemetry exports).  The report never claims more than the analysis
proved: when the interprocedural layer degrades (divergence or fault
injection), ``degraded`` is set and only provenance-based invalid-free
findings survive.  :mod:`repro.workloads.auditcorpus` scores the auditor
against the seeded Juliet/CVE ground truth and prints the
precision/recall row.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

from repro.analysis import ranges as ranges_mod
from repro.analysis.engine import DataflowInfo, analyze_control_flow
from repro.isa.opcodes import Opcode
from repro.isa.operands import Imm
from repro.isa.registers import ARG_REGS, RDI
from repro.telemetry.validate import validate as validate_schema

_SCHEMA_PATH = Path(__file__).with_name("audit_schema.json")

MUST = "must"
MAY = "may"


@dataclass(frozen=True)
class AuditFinding:
    """One reported (potential) memory error."""

    site: int            # instruction address
    kind: str            # oob-write | oob-read | double-free | invalid-free
    confidence: str      # must | may
    detail: str
    witness: Dict[str, Optional[int]] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, object]:
        return {
            "site": self.site,
            "kind": self.kind,
            "confidence": self.confidence,
            "detail": self.detail,
            "witness": dict(self.witness),
        }


@dataclass
class AuditReport:
    """All findings over one binary plus coverage stats."""

    findings: List[AuditFinding] = field(default_factory=list)
    blocks: int = 0
    functions: int = 0
    accesses_classified: int = 0
    degraded: bool = False
    degraded_reason: str = ""
    target: str = ""

    @property
    def must_findings(self) -> List[AuditFinding]:
        return [f for f in self.findings if f.confidence == MUST]

    def kinds(self) -> "set[str]":
        return {finding.kind for finding in self.findings}

    def as_dict(self) -> Dict[str, object]:
        document: Dict[str, object] = {
            "meta": {"kind": "audit", "tool": "redfat", "target": self.target},
            "findings": [finding.as_dict() for finding in self.findings],
            "stats": {
                "blocks": self.blocks,
                "functions": self.functions,
                "accesses_classified": self.accesses_classified,
                "must": len(self.must_findings),
                "may": len(self.findings) - len(self.must_findings),
            },
        }
        if self.degraded:
            document["degraded"] = True
            document["degraded_reason"] = self.degraded_reason
        return document

    def to_json(self) -> str:
        return json.dumps(self.as_dict(), indent=2, sort_keys=True)


def load_schema() -> Dict[str, object]:
    return json.loads(_SCHEMA_PATH.read_text())


def validate_report(document: Dict[str, object]) -> List[str]:
    """Schema-validate an audit report document; return the error list."""
    return validate_schema(document, load_schema())


def _witness(verdict: ranges_mod.AccessVerdict,
             alloc_site: Optional[int] = None) -> Dict[str, Optional[int]]:
    witness: Dict[str, Optional[int]] = {
        "offset_lo": verdict.offset_lo,
        "offset_hi": verdict.offset_hi,
        "size_lo": verdict.size_lo,
        "size_hi": verdict.size_hi,
        "width": verdict.width,
    }
    if alloc_site is not None:
        witness["alloc_site"] = alloc_site
    return witness


def _bounds(value: Optional[int]) -> str:
    return "?" if value is None else str(value)


def _audit_access(instruction, state, findings: List[AuditFinding]) -> bool:
    """Classify one memory access; returns True when it was classifiable."""
    access = instruction.memory_access()
    if access is None or state is None:
        return False
    mem, is_read, is_write, width = access
    verdict = ranges_mod.classify_access(state, mem, width)
    if verdict is None:
        return False
    if verdict.kind in ("must-oob", "may-oob"):
        kind = "oob-write" if is_write else "oob-read"
        confidence = MUST if verdict.kind == "must-oob" else MAY
        base = state.regs.get(mem.base)
        detail = (
            f"{width}-byte {'write' if is_write else 'read'} at offset "
            f"[{_bounds(verdict.offset_lo)}, {_bounds(verdict.offset_hi)}] "
            f"into allocation of size "
            f"[{_bounds(verdict.size_lo)}, {_bounds(verdict.size_hi)}]"
        )
        findings.append(AuditFinding(
            site=instruction.address, kind=kind, confidence=confidence,
            detail=detail,
            witness=_witness(verdict, base.ident if base is not None else None),
        ))
    return True


def _audit_free_value(site, value, state, provenance_facts,
                      findings: List[AuditFinding],
                      may_double_free: bool) -> None:
    """Flag a double-free or a free of a non-heap value, given the
    abstract value reaching a freeing site.

    *may_double_free* gates the "maybe freed" verdict: it is sound at a
    call site (the join there is over the caller's own paths) but noise
    at a shared free-stub's rtcall, where the join spans unrelated call
    contexts.
    """
    if value is not None and value.base == "alloc":
        if value.lo is not None and value.hi is not None and (
                value.lo > 0 or value.hi < 0) and not value.widened:
            findings.append(AuditFinding(
                site=site, kind="invalid-free", confidence=MUST,
                detail=(f"free of interior pointer (offset "
                        f"[{value.lo}, {value.hi}]) into allocation at "
                        f"{value.ident:#x}"),
                witness={"offset_lo": value.lo, "offset_hi": value.hi,
                         "alloc_site": value.ident},
            ))
            return
        freed = state.freed_state(value.ident)
        if freed == ranges_mod.FREED_YES:
            findings.append(AuditFinding(
                site=site, kind="double-free", confidence=MUST,
                detail=(f"allocation at {value.ident:#x} is already freed "
                        "on every path reaching this free"),
                witness={"alloc_site": value.ident},
            ))
        elif (may_double_free and freed == ranges_mod.FREED_MAYBE
                and not state.freed_unknown):
            findings.append(AuditFinding(
                site=site, kind="double-free", confidence=MAY,
                detail=(f"allocation at {value.ident:#x} may already be "
                        "freed on some path reaching this free"),
                witness={"alloc_site": value.ident},
            ))
        return
    if (value is not None and value.base == "num"
            and value.lo is not None and value.hi is not None
            and not value.widened
            and (value.lo > 0 or value.hi < 0)):
        findings.append(AuditFinding(
            site=site, kind="invalid-free", confidence=MUST,
            detail=(f"free of non-pointer value "
                    f"[{value.lo}, {value.hi}]"),
            witness={"offset_lo": value.lo, "offset_hi": value.hi},
        ))
        return
    # Fall back to the intra-procedural provenance: a stack/global/
    # constant-derived pointer is never a heap object.
    if provenance_facts is not None:
        from repro.analysis import provenance

        fact = provenance_facts.get(RDI)
        if fact is not None and fact[0].is_nonheap:
            if fact[0] is not provenance.Kind.CONST:
                findings.append(AuditFinding(
                    site=site, kind="invalid-free", confidence=MUST,
                    detail=(f"free of {fact[0].name.lower()}-derived "
                            "pointer (never heap-allocated)"),
                    witness={},
                ))


def _audit_rtcall_free(instruction, state, provenance_facts,
                       findings: List[AuditFinding]) -> None:
    """Audit a direct ``free``/``realloc`` rtcall site."""
    operands = instruction.operands
    if (not operands or not isinstance(operands[0], Imm)
            or operands[0].value not in ranges_mod.FREEING_SERVICES):
        return
    value = state.reg(RDI) if state is not None else None
    _audit_free_value(instruction.address, value, state, provenance_facts,
                      findings, may_double_free=False)


def _audit_call_frees(instruction, block_start, state, summaries, calls,
                      findings: List[AuditFinding]) -> None:
    """Audit a direct call whose callee (per its summary) frees some of
    its arguments — this is where the double-free verdict is precise,
    since the caller's own state is not joined with other contexts."""
    if state is None or summaries is None:
        return
    target = calls.get(block_start)  # calls are keyed by block start
    summary = summaries.get(target) if target is not None else None
    if summary is None or summary.widened:
        return
    for index in sorted(summary.frees_args):
        if index >= len(ARG_REGS):
            continue
        _audit_free_value(instruction.address, state.reg(ARG_REGS[index]),
                          state, None, findings, may_double_free=True)


def audit_dataflow(info: DataflowInfo, target: str = "") -> AuditReport:
    """Produce an :class:`AuditReport` from an analyzed binary."""
    report = AuditReport(target=target, blocks=len(info.graph.blocks))
    if info.fallback:
        report.degraded = True
        report.degraded_reason = info.fallback_reason
        return report
    if info.interproc_fallback or info.range_facts is None:
        report.degraded = True
        report.degraded_reason = info.interproc_reason or "interproc disabled"
    if info.summaries is not None:
        report.functions = len(info.summaries)
    calls: Dict[int, int] = {}
    if info.callgraph is not None:
        for function in info.callgraph.functions.values():
            calls.update(function.calls)
    findings: List[AuditFinding] = []
    for block in info.graph.blocks:
        entry = (info.range_facts or {}).get(block.start)
        state = entry.copy() if entry is not None and not entry.havoc else None
        for instruction in block.instructions:
            if instruction.opcode is Opcode.RTCALL:
                _audit_rtcall_free(
                    instruction, state,
                    info.facts_before(instruction.address), findings,
                )
            elif instruction.opcode is Opcode.CALL:
                _audit_call_frees(instruction, block.start, state,
                                  info.summaries, calls, findings)
            elif _audit_access(instruction, state, findings):
                report.accesses_classified += 1
            if state is not None:
                ranges_mod.apply_instruction(state, instruction)
                if state.havoc:
                    state = None
    # One finding per (site, kind): re-visits through joins don't stack.
    unique: Dict[tuple, AuditFinding] = {}
    for finding in findings:
        key = (finding.site, finding.kind)
        current = unique.get(key)
        if current is None or (current.confidence == MAY
                               and finding.confidence == MUST):
            unique[key] = finding
    report.findings = sorted(
        unique.values(), key=lambda f: (f.site, f.kind)
    )
    return report


def audit(target, telemetry=None, output=None) -> AuditReport:
    """Audit *target* (path / Binary / CompiledProgram) statically.

    Returns the :class:`AuditReport`; *output* additionally writes the
    schema-validated JSON document to disk.
    """
    from repro.api import load
    from repro.rewriter.cfg import recover_control_flow
    from repro.telemetry.hub import coerce

    tele = coerce(telemetry)
    program = load(target)
    with tele.span("audit"):
        control_flow = recover_control_flow(program.binary, telemetry=tele)
        info = analyze_control_flow(control_flow, telemetry=tele)
        report = audit_dataflow(info, target=str(target))
    tele.count("audit.findings", len(report.findings))
    tele.count("audit.must_findings", len(report.must_findings))
    document = report.as_dict()
    errors = validate_report(document)
    if errors:  # never write (or return) an off-contract document
        raise ValueError(f"audit report failed schema validation: {errors}")
    if output is not None:
        Path(output).write_text(report.to_json() + "\n")
    return report


def render_report(report: AuditReport) -> str:
    """Human-readable finding list (the CLI's default output)."""
    lines = [
        f"audit: {len(report.findings)} finding(s) "
        f"({len(report.must_findings)} must) over {report.blocks} blocks, "
        f"{report.functions} function(s), "
        f"{report.accesses_classified} classified access(es)"
    ]
    if report.degraded:
        lines.append(f"  [degraded: {report.degraded_reason}]")
    for finding in report.findings:
        lines.append(
            f"  {finding.site:#x}  {finding.kind:<12} {finding.confidence:<4} "
            f"{finding.detail}"
        )
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.audit",
        description="Statically audit a binary for memory errors.",
    )
    parser.add_argument("target", nargs="?", help=".melf binary or .c source")
    parser.add_argument("-o", "--output", help="write the JSON report here")
    parser.add_argument("--json", action="store_true",
                        help="print the JSON document instead of text")
    parser.add_argument("--fail-on-findings", action="store_true",
                        help="exit 1 when any must-finding is reported")
    parser.add_argument("--validate", metavar="REPORT",
                        help="validate an existing report file and exit")
    arguments = parser.parse_args(argv)
    if arguments.validate is not None:
        try:
            document = json.loads(Path(arguments.validate).read_text())
        except (OSError, ValueError) as error:
            print(f"audit: cannot read {arguments.validate}: {error}",
                  file=sys.stderr)
            return 2
        errors = validate_report(document)
        if errors:
            for error in errors:
                print(f"audit: {error}", file=sys.stderr)
            return 1
        print(f"{arguments.validate}: ok")
        return 0
    if arguments.target is None:
        parser.error("target is required unless --validate is given")
    report = audit(arguments.target, output=arguments.output)
    print(report.to_json() if arguments.json else render_report(report))
    if arguments.fail_on_findings and report.must_findings:
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
