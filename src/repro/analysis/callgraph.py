"""Call-graph recovery and bottom-up function summaries.

Functions are recovered from the block graph: every direct ``call``
target (plus the binary entry) is a function entry, and a function's
body is the set of blocks reachable from its entry without crossing into
another entry.  Direct calls between entries form the call-graph edges;
``callr`` (indirect) and leaky transfers widen the whole graph to ⊤ —
with an indirect call in the text, any function may be invoked with any
arguments, so concrete entry facts are withheld everywhere.

Summaries are computed bottom-up over Tarjan's SCC condensation: each
non-recursive function is run through the worklist solver in *symbolic*
mode (argument registers seeded with ``arg(i)`` values from
:mod:`repro.analysis.ranges`) so the summary can report, per function:

* ``returns`` — the RAX value at ``ret`` joined over all returns, still
  symbolic (``arg``-based or a *fresh* allocation with size facts
  recovered from its ``malloc``-family rtcall);
* ``clobbered`` — registers whose caller-visible value may change
  (instruction scan plus the union of callee clobbers; RSP excluded);
* ``frees_args`` / ``frees_other`` — which pointer arguments the callee
  frees, and whether it can free anything else;
* ``pointer_store_args`` / ``stack_stores`` / ``unknown_stores`` —
  where its stores can land, which decides whether a caller's tracked
  stack slots survive the call.

Recursive, indirect-calling, and leaky functions get the ``widened``
worst-case summary.  The summaries feed three consumers: the
summary-aware provenance call edge, the top-down concrete range pass
(:func:`repro.analysis.ranges.compute_range_facts`), and the static
auditor.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.analysis import solver
from repro.analysis.graph import BlockGraph
from repro.analysis.ranges import (
    HAVOC,
    RangeVal,
    SummaryCollector,
    analyze_function,
    entry_state,
)
from repro.isa.opcodes import Opcode
from repro.isa.registers import GPRS, RSP, Register


@dataclass
class FunctionInfo:
    """One recovered function: entry block plus its flooded body."""

    entry: int
    blocks: FrozenSet[int] = frozenset()
    #: Call-site block start -> direct callee entry.
    calls: Dict[int, int] = field(default_factory=dict)
    has_indirect: bool = False  # contains a callr
    has_jmpr: bool = False      # contains an indirect jump
    leaky: bool = False         # transfers outside the decoded text
    recursive: bool = False     # member of a non-trivial SCC (or self-loop)

    @property
    def widened(self) -> bool:
        """True when the function cannot be summarized precisely."""
        return (self.recursive or self.has_indirect or self.has_jmpr
                or self.leaky)


@dataclass
class FunctionSummary:
    """Caller-visible effects of one function (see module docstring)."""

    entry: int
    clobbered: FrozenSet[Register] = frozenset()
    frees_args: FrozenSet[int] = frozenset()
    frees_other: bool = False
    pointer_store_args: FrozenSet[int] = frozenset()
    stack_stores: bool = False
    unknown_stores: bool = False
    returns: Optional[RangeVal] = None
    widened: bool = False


#: The know-nothing clobber set: every GPR except the stack pointer.
ALL_CLOBBERED = frozenset(r for r in GPRS if r is not RSP)


@dataclass
class CallGraph:
    """Recovered functions plus a bottom-up traversal order."""

    functions: Dict[int, FunctionInfo]
    #: Entries in callees-first order (Tarjan SCC condensation topo sort).
    callees_first: Tuple[int, ...]
    #: Any ``callr`` anywhere: entry facts are unknowable graph-wide.
    has_indirect_calls: bool = False

    @property
    def callers_first(self) -> Tuple[int, ...]:
        return tuple(reversed(self.callees_first))


def _flood_function(graph: BlockGraph, entry: int,
                    entries: Set[int]) -> FunctionInfo:
    """Collect the blocks reachable from *entry* without entering
    another function's entry block."""
    info = FunctionInfo(entry=entry)
    blocks: Set[int] = set()
    stack = [entry]
    while stack:
        start = stack.pop()
        if start in blocks:
            continue
        blocks.add(start)
        block = graph.block_at(start)
        last = block.instructions[-1] if block.instructions else None
        if last is not None:
            if last.opcode is Opcode.CALL:
                target = last.jump_target()
                if target is not None and target in entries:
                    info.calls[start] = target
                elif target is not None:
                    info.leaky = True  # call into undecoded text
            elif last.opcode is Opcode.CALLR:
                info.has_indirect = True
            elif last.opcode is Opcode.JMPR:
                info.has_jmpr = True
        if start in graph.leaky:
            info.leaky = True
        for sink in graph.succs.get(start, ()):
            if sink not in entries or sink == entry:
                stack.append(sink)
    info.blocks = frozenset(blocks)
    return info


def _tarjan_order(functions: Dict[int, FunctionInfo]) -> Tuple[int, ...]:
    """Callees-first order; marks members of cycles as recursive."""
    index: Dict[int, int] = {}
    lowlink: Dict[int, int] = {}
    on_stack: Set[int] = set()
    stack: List[int] = []
    order: List[int] = []
    counter = [0]

    def edges(entry: int) -> List[int]:
        return [callee for callee in functions[entry].calls.values()
                if callee in functions]

    for root in sorted(functions):
        if root in index:
            continue
        # Iterative Tarjan: (node, iterator position) frames.
        work = [(root, 0)]
        while work:
            node, position = work.pop()
            if position == 0:
                index[node] = lowlink[node] = counter[0]
                counter[0] += 1
                stack.append(node)
                on_stack.add(node)
            recurse = False
            successors = edges(node)
            for offset in range(position, len(successors)):
                succ = successors[offset]
                if succ not in index:
                    work.append((node, offset + 1))
                    work.append((succ, 0))
                    recurse = True
                    break
                if succ in on_stack:
                    lowlink[node] = min(lowlink[node], index[succ])
            if recurse:
                continue
            if lowlink[node] == index[node]:
                component: List[int] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                if len(component) > 1:
                    for member in component:
                        functions[member].recursive = True
                elif node in edges(node):
                    functions[node].recursive = True
                order.extend(sorted(component))
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
    return tuple(order)


def build_call_graph(graph: BlockGraph) -> CallGraph:
    """Recover functions and the direct call graph from *graph*."""
    entries: Set[int] = set()
    starts = set(graph.control_flow.block_of)
    program_entry = graph.control_flow.entry
    if program_entry is not None and program_entry in starts:
        entries.add(program_entry)
    for start in starts:
        block = graph.block_at(start)
        last = block.instructions[-1] if block.instructions else None
        if last is not None and last.opcode is Opcode.CALL:
            target = last.jump_target()
            if target is not None and target in starts:
                entries.add(target)
    functions = {entry: _flood_function(graph, entry, entries)
                 for entry in sorted(entries)}
    order = _tarjan_order(functions)
    has_indirect = any(info.has_indirect for info in functions.values())
    return CallGraph(functions=functions, callees_first=order,
                     has_indirect_calls=has_indirect)


def _widened_summary(entry: int) -> FunctionSummary:
    return FunctionSummary(
        entry=entry,
        clobbered=ALL_CLOBBERED,
        frees_other=True,
        unknown_stores=True,
        stack_stores=True,
        returns=None,
        widened=True,
    )


def _scan_clobbers(graph: BlockGraph, info: FunctionInfo,
                   summaries: Dict[int, FunctionSummary]) -> FrozenSet[Register]:
    clobbered: Set[Register] = set()
    for start in info.blocks:
        for instruction in graph.block_at(start).instructions:
            clobbered |= instruction.regs_written()
        callee = info.calls.get(start)
        if callee is not None:
            summary = summaries.get(callee)
            clobbered |= summary.clobbered if summary else ALL_CLOBBERED
    clobbered.discard(RSP)
    return frozenset(clobbered)


def compute_summaries(call_graph: CallGraph,
                      graph: BlockGraph) -> Dict[int, FunctionSummary]:
    """Bottom-up symbolic pass producing a summary per function.

    Solver divergence propagates (:class:`~repro.analysis.solver.
    FixpointDiverged` is an :class:`~repro.errors.InstrumentationError`)
    so the engine can fall back to intra-procedural facts wholesale — a
    silently-wrong summary must never be absorbed.
    """
    summaries: Dict[int, FunctionSummary] = {}
    for entry in call_graph.callees_first:
        info = call_graph.functions[entry]
        if info.widened:
            summaries[entry] = _widened_summary(entry)
            continue
        collector = SummaryCollector()
        analyze_function(graph, info, entry_state(symbolic=True),
                         summaries, collector)
        summaries[entry] = FunctionSummary(
            entry=entry,
            clobbered=_scan_clobbers(graph, info, summaries),
            frees_args=frozenset(collector.frees_args),
            frees_other=collector.frees_other,
            pointer_store_args=frozenset(collector.pointer_store_args),
            stack_stores=collector.stack_stores,
            unknown_stores=collector.unknown_stores,
            returns=collector.returns,
        )
    return summaries


def validate_summaries(call_graph: CallGraph,
                       summaries: Dict[int, FunctionSummary]) -> bool:
    """Structural invariants the ``analysis.callgraph`` fault payload
    breaks: every function summarized, entries consistent, clobber sets
    register-typed and RSP-free, freed-arg indices in range."""
    for entry, info in call_graph.functions.items():
        summary = summaries.get(entry)
        if summary is None or summary.entry != entry:
            return False
        if not isinstance(summary.clobbered, frozenset):
            return False
        for register in summary.clobbered:
            if not isinstance(register, Register) or register is RSP:
                return False
        for index in summary.frees_args:
            if not isinstance(index, int) or not 0 <= index < 8:
                return False
        if info.widened and not summary.widened:
            return False
    return len(summaries) == len(call_graph.functions)


def _corrupt_summaries(summaries: Dict[int, FunctionSummary],
                       payload=None) -> None:
    """Fault payload for ``analysis.callgraph``: plant an invariant
    violation that :func:`validate_summaries` must catch."""
    if not summaries:
        summaries[-1] = FunctionSummary(entry=0)
        return
    import random
    rng = random.Random(payload)
    entry = rng.choice(sorted(summaries))
    summary = summaries[entry]
    choice = rng.randrange(3)
    if choice == 0:
        summary.clobbered = summary.clobbered | {RSP}
    elif choice == 1:
        summary.frees_args = frozenset({99})
    else:
        summary.entry = entry ^ 0x1
