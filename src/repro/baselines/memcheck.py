"""A Valgrind-Memcheck-style baseline: heavyweight DBI + redzone checking.

Semantics are real: every guest data access is validated against a
shadow map maintained by a redzone-padding allocator
(:class:`~repro.runtime.shadow.ShadowRuntime`), so detection results
(Table 2) come from genuine (Redzone)-only checking with all its blind
spots.  Like Memcheck (invoked with ``--leak-check=no
--undef-value-errors=no``), it is a *logging* tool: errors are recorded
and execution continues.

**Cost model.**  Memcheck executes nothing natively: every guest
instruction is disassembled into VEX IR, instrumented and JIT-compiled,
which multiplies the dynamic instruction count several-fold, and each
memory access additionally runs an A-bit lookup.  We model the reported
slowdown as::

    effective = guest_instructions * DBI_EXPANSION_FACTOR
              + memory_accesses   * ACCESS_CHECK_COST
              + heap_events       * ALLOCATOR_INTERCEPT_COST

and report ``effective / baseline_instructions`` — i.e. the detection
machinery is executed for real (the shadow map *is* consulted per
access), while the JIT expansion that pure Python cannot reproduce is
the documented constant below.  The constants were chosen so that the
model lands near Memcheck's published SPEC overhead (~12x geometric
mean) for workloads with a typical 25-35% memory-access density.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.binfmt.binary import Binary
from repro.runtime.reporting import MemoryErrorReport
from repro.runtime.shadow import ShadowRuntime
from repro.vm.loader import load_binary

#: VEX translation + JIT dispatch expansion per guest instruction.
DBI_EXPANSION_FACTOR = 4.0

#: Extra instructions per memory access for the A-bit (addressability)
#: lookup in Memcheck's two-level shadow table.
ACCESS_CHECK_COST = 24.0

#: malloc/free intercept + redzone bookkeeping cost per heap event.
ALLOCATOR_INTERCEPT_COST = 150.0


@dataclass
class MemcheckResult:
    """Outcome of one Memcheck-style run."""

    status: int
    guest_instructions: int
    memory_accesses: int
    heap_events: int
    reports: List[MemoryErrorReport] = field(default_factory=list)
    runtime: Optional[ShadowRuntime] = None

    @property
    def effective_instructions(self) -> float:
        """Modelled dynamic cost (see module docstring)."""
        return (
            self.guest_instructions * DBI_EXPANSION_FACTOR
            + self.memory_accesses * ACCESS_CHECK_COST
            + self.heap_events * ALLOCATOR_INTERCEPT_COST
        )

    @property
    def detected(self) -> bool:
        return bool(self.reports)


class MemcheckVM:
    """Runs a binary under DBI-style shadow checking."""

    def __init__(self, redzone: int = 16) -> None:
        self.redzone = redzone

    def run(
        self,
        binary: Binary,
        max_instructions: int = 2_000_000_000,
        setup=None,
    ) -> MemcheckResult:
        """Run *binary*; *setup(cpu)* (if given) pokes inputs post-load."""
        runtime = _CountingShadowRuntime(redzone=self.redzone)
        cpu = load_binary(binary, runtime)
        if setup is not None:
            setup(cpu)
        accesses = [0]

        def hook(address, size, is_read, is_write, instruction):
            accesses[0] += 1
            runtime.check_access(address, size, is_write, site=instruction.address)

        cpu.access_hook = hook
        status = cpu.run(max_instructions)
        return MemcheckResult(
            status=status,
            guest_instructions=cpu.instructions_executed,
            memory_accesses=accesses[0],
            heap_events=runtime.heap_events,
            reports=list(runtime.errors),
            runtime=runtime,
        )


class _CountingShadowRuntime(ShadowRuntime):
    """Shadow runtime in log mode (the base class counts heap events)."""

    def __init__(self, redzone: int = 16) -> None:
        super().__init__(mode="log", redzone=redzone)


def run_memcheck(
    binary: Binary, max_instructions: int = 2_000_000_000
) -> MemcheckResult:
    """Convenience wrapper: run *binary* under the Memcheck baseline."""
    return MemcheckVM().run(binary, max_instructions)
