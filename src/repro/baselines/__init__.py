"""Baseline/comparator tools the paper evaluates against."""

from repro.baselines.memcheck import (
    DBI_EXPANSION_FACTOR,
    MemcheckResult,
    MemcheckVM,
    run_memcheck,
)

__all__ = [
    "MemcheckVM",
    "MemcheckResult",
    "run_memcheck",
    "DBI_EXPANSION_FACTOR",
]
