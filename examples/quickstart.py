#!/usr/bin/env python3
"""Quickstart: compile a program, harden its binary, catch an exploit.

Walks the library's core loop end-to-end:

1. compile a vulnerable C-like program to a guest binary;
2. strip it (RedFat needs no symbols);
3. harden the binary with the combined (Redzone)+(LowFat) checks;
4. run it with a benign input — behaviour is preserved;
5. run it with an attacker input whose offset *skips the redzone* into
   an adjacent heap object — silent corruption without hardening, a
   clean trap with it.

Run:  python examples/quickstart.py
"""

import repro.api as redfat
from repro.cc import compile_source
from repro.errors import GuestMemoryError
from repro.telemetry import Telemetry

SOURCE = """
// A web-server-ish request handler with an unvalidated length field.
struct request { int kind; int length; char payload[48]; };

int handle(struct request *req, char *session_key) {
    // BUG: length is attacker-controlled and never validated.
    for (int i = 0; i < req->length; i = i + 1)
        req->payload[i] = 'A' + i % 26;
    return session_key[0];          // the attacker's real target
}

int main() {
    struct request *req = malloc(64);
    char *session_key = malloc(32);
    memset(session_key, 'S', 32);
    req->kind = 1;
    req->length = arg(0);           // "network input"
    int key_byte = handle(req, session_key);
    print(key_byte);                // 83 ('S') unless corrupted
    return 0;
}
"""


def main() -> None:
    print("== compile ==")
    program = compile_source(SOURCE)
    text = program.binary.segment(".text")
    print(f"binary: {len(text.data)} bytes of code at {text.vaddr:#x}")

    print("\n== harden the stripped binary ==")
    stripped = program.binary.strip()
    telemetry = Telemetry(meta={"kind": "harden", "input": "quickstart"})
    # The facade: "fully" is the all-optimizations preset (Table 1 +merge).
    hardened = redfat.harden(stripped, options="fully", telemetry=telemetry)
    print(f"patched {len(hardened.rewrite.patched)} instrumentation sites, "
          f"skipped {len(hardened.rewrite.skipped)}; "
          f"+{hardened.rewrite.trampoline_bytes} trampoline bytes")
    phases = [record.name for record in telemetry.spans
              if record.depth == 1]
    print(f"phases timed: {', '.join(phases)}")

    print("\n== benign input (length=48) ==")
    baseline = program.run(args=[48])
    guarded = program.run(
        args=[48], binary=hardened.binary,
        runtime=hardened.create_runtime(mode="abort"),
    )
    print(f"unhardened: exit={baseline.status} output={baseline.output}")
    print(f"hardened:   exit={guarded.status} output={guarded.output} "
          f"({guarded.instructions / baseline.instructions:.2f}x instructions)")
    assert guarded.output == baseline.output

    print("\n== attack input (length=120: skips the redzone) ==")
    attacked = program.run(args=[120])
    print(f"unhardened: exit={attacked.status} output={attacked.output}"
          "   <- session key silently overwritten!")
    try:
        program.run(
            args=[120], binary=hardened.binary,
            runtime=hardened.create_runtime(mode="abort"),
        )
        print("hardened:   NOT DETECTED (unexpected)")
    except GuestMemoryError as error:
        print(f"hardened:   blocked -> {error}")


if __name__ == "__main__":
    main()
