#!/usr/bin/env python3
"""Fault-injection campaign: prove hostile state degrades, never crashes.

The hardening pipeline must survive the very corruption it defends
against.  This example arms seeded faults at named points across the
stack — allocator metadata corruption, redzone overwrites, loader
truncation, trampoline-encoding failures, VM bit-flips, hung guests —
and drives the full strip/harden/load/run pipeline once per seed.

Every run must land in a *closed* outcome set:

- ``detected``  — a defense fired (error report, typed ReproError,
                  or the fuel watchdog killed a hung guest);
- ``degraded``  — sites fell down the protection ladder
                  (lowfat+redzone -> redzone-only -> quarantined);
- ``clean``     — the fault landed in unchecked state.

Anything else — any non-ReproError escaping the pipeline — is UNCAUGHT
and fails the campaign.

Run:  python examples/fault_campaign.py
"""

from repro.faults.campaign import run_campaign, run_one, compile_campaign_program
from repro.faults.points import FAULT_POINTS

# ---------------------------------------------------------------------------
# 1. The registry: every named fault point and what surviving it means.
# ---------------------------------------------------------------------------

print("fault points:")
for name, point in sorted(FAULT_POINTS.items()):
    sticky = " (sticky)" if point.sticky else ""
    print(f"  {name:18s}{sticky} {point.description}")

# ---------------------------------------------------------------------------
# 2. One seeded run, dissected.  The seed alone determines which point
#    fires, on which hit, and with what corruption payload — campaigns
#    are exactly reproducible.
# ---------------------------------------------------------------------------

program = compile_campaign_program()
reference = program.run(args=[24])
record = run_one(0, program, reference.output, point="alloc.metadata")
print(f"\nseed 0 @ alloc.metadata: {record.outcome}"
      + (f" — {record.detail}" if record.detail else ""))

hang = run_one(0, program, reference.output, point="vm.hang", fuel=100_000)
print(f"seed 0 @ vm.hang:        {hang.outcome} — {hang.detail}")

# ---------------------------------------------------------------------------
# 3. The sweep: 50 seeds round-robin over the registry.  The assert at
#    the end is the whole point of the subsystem.
# ---------------------------------------------------------------------------

print()
result = run_campaign(seeds=50)
print(result.render())
assert not result.uncaught(), "pipeline leaked an untyped exception"
print("\nall runs accounted for: detected, degraded, or clean.")
