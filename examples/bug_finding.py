#!/usr/bin/env python3
"""Bug-finding mode: a tiny coverage-guided hunt in log mode.

RedFat's ``error()`` has two personalities (paper §4.2): *abort* for
hardening production binaries and *log* for testing/bug-finding.  This
example points the hunt pipeline (``repro.hunt``, also ``redfat hunt``)
at a record parser with two planted input-dependent bugs: starting from
one benign seed, the seeded mutators — guided by VM edge coverage —
must rediscover both, and triage dedups the log-mode reports to one
finding per ``(kind, site)`` and cross-references the static auditor.

Run:  python examples/bug_finding.py
"""

import repro.api as redfat
from repro.cc import compile_source
from repro.hunt import HuntEntry

#: A record parser with several input-dependent bugs.
SOURCE = """
struct record { int kind; int count; char body[24]; };

int parse(struct record *rec, char *table, int kind, int count) {
    rec->kind = kind;
    rec->count = count;
    for (int i = 0; i < count; i++)          // BUG 1: count unchecked
        rec->body[i] = 'a' + i % 26;
    return table[kind * 4];                   // BUG 2: kind unchecked
}

int main() {
    struct record *rec = malloc(40);
    char *table = malloc(64);
    memset(table, 1, 64);
    int kind = arg(0);
    int count = arg(1);
    int checksum = parse(rec, table, kind, count);
    if (count > 0 && rec->body[0] != 'a') checksum = -1;
    print(checksum);
    return 0;
}
"""


def main() -> None:
    program = compile_source(SOURCE)
    entry = HuntEntry(
        name="record-parser",
        program=program,
        seeds=((1, 4),),          # one benign input; no PoC given
        crash_class="heap-overflow",
    )

    print("hunting the record parser from one benign seed (log mode)...")
    report = redfat.hunt(
        entries=[entry], budget=48, seed=3,
        presets=("fully",), runtimes=("redfat",),
        stop_on_match=False,      # keep mutating: we want *both* bugs
    )
    print(report.render())

    result = report.entries[0]
    sites = sorted({finding.site for finding in result.triage.findings})
    print(f"\ndistinct buggy sites found: {len(sites)}")
    for finding in result.triage.findings:
        print(f"  site {finding.site:#x}: {finding.kind} "
              f"on input {list(finding.input)} [{finding.confidence}]")
    assert len(sites) >= 2, "expected both planted bugs"
    assert result.expected_detected, "expected the heap-overflow class"
    print("\nboth planted bugs were localised to their exact instructions.")


if __name__ == "__main__":
    main()
