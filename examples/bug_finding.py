#!/usr/bin/env python3
"""Bug-finding mode: log-and-continue over an input sweep.

RedFat's ``error()`` has two personalities (paper §4.2): *abort* for
hardening production binaries and *log* for testing/bug-finding.  This
example uses log mode as a miniature fuzzing harness: it sweeps inputs
over an instrumented binary, keeps running past every detected error,
and aggregates the de-duplicated reports per site — the workflow of
tools like RetroWrite's binary ASAN, but with the stronger
(Redzone)+(LowFat) oracle.

Run:  python examples/bug_finding.py
"""

from collections import Counter

import repro.api as redfat
from repro.cc import compile_source

#: A record parser with several input-dependent bugs.
SOURCE = """
struct record { int kind; int count; char body[24]; };

int parse(struct record *rec, char *table, int kind, int count) {
    rec->kind = kind;
    rec->count = count;
    for (int i = 0; i < count; i++)          // BUG 1: count unchecked
        rec->body[i] = 'a' + i % 26;
    return table[kind * 4];                   // BUG 2: kind unchecked
}

int main() {
    struct record *rec = malloc(40);
    char *table = malloc(64);
    memset(table, 1, 64);
    int kind = arg(0);
    int count = arg(1);
    int checksum = parse(rec, table, kind, count);
    if (count > 0 && rec->body[0] != 'a') checksum = -1;
    print(checksum);
    return 0;
}
"""


def main() -> None:
    program = compile_source(SOURCE)
    hardened = redfat.harden(program.binary.strip(), options="fully")

    print("sweeping 64 inputs over the instrumented binary (log mode)...")
    site_hits = Counter()
    kinds = Counter()
    crashes = 0
    for kind in range(0, 40, 5):
        for count in (0, 8, 24, 25, 64, 200, 500, 100000):
            runtime = hardened.create_runtime(mode="log")
            try:
                program.run(args=[kind, count], binary=hardened.binary,
                            runtime=runtime)
            except Exception:
                crashes += 1
                continue
            for report in runtime.errors:
                site_hits[report.site] += 1
                kinds[report.kind.value] += 1

    print(f"\ndistinct buggy sites found: {len(site_hits)}")
    for site, hits in sorted(site_hits.items()):
        print(f"  site {site:#x}: flagged on {hits} inputs")
    print("\nerror kinds observed:")
    for kind, hits in kinds.most_common():
        print(f"  {kind}: {hits}")
    if crashes:
        print(f"\n({crashes} inputs faulted outside instrumented code)")
    assert len(site_hits) >= 2, "expected both planted bugs"
    print("\nboth planted bugs were localised to their exact instructions.")


if __name__ == "__main__":
    main()
