#!/usr/bin/env python3
"""The two-phase profile workflow of Fig. 5: eliminating false positives.

Fortran-style code (and hand-written C anti-idioms) index arrays through
*shifted base pointers* — always out of bounds, never actually wrong.
Naive pointer-arithmetic checking flags them.  This example walks the
paper's mitigation end-to-end:

1. full (Redzone)+(LowFat) checking on every access -> false positive;
2. profiling phase: run a test suite, record which sites always pass
   the (LowFat) check -> allow-list (``allow.lst``);
3. production phase: allow-listed sites keep the full check, the
   anti-idiom site falls back to (Redzone)-only -> no false positive,
   while a real injected bug is still caught.

Run:  python examples/profile_workflow.py
"""

import tempfile
from pathlib import Path

import repro.api as redfat
from repro.cc import compile_source
from repro.core import AllowList, Profiler, RedFatOptions
from repro.core.redfat_tool import PROT_LOWFAT, PROT_REDZONE
from repro.errors import GuestMemoryError

SOURCE = """
// A Fortran-90-flavoured kernel: the array is indexed 1-based through
// a base pointer shifted below the allocation (what gfortran emits for
// DIMENSION(1:n) arrays).
int one_based_sum(int *a, int n) {
    int *fa = a - 8;                  // intentional out-of-bounds base
    int s = 0;
    for (int i = 8; i < n + 8; i = i + 1) s = s + fa[i];
    return s;
}

int main() {
    int n = 64;
    int *data = malloc(8 * n);
    for (int i = 0; i < n; i = i + 1) data[i] = i;
    int s = one_based_sum(data, n);
    if (arg(0) == 1)
        data[n + 40] = 7;             // a REAL bug, triggered on demand
    print(s);
    return 0;
}
"""


def main() -> None:
    program = compile_source(SOURCE)
    stripped = program.binary.strip()

    print("== phase 0: full checking, no allow-list ==")
    naive = redfat.harden(stripped, options="fully")
    try:
        program.run(args=[0], binary=naive.binary,
                    runtime=naive.create_runtime(mode="abort"))
        print("ran clean (unexpected)")
    except GuestMemoryError as error:
        print(f"FALSE POSITIVE on legitimate code -> {error}")

    print("\n== phase 1: profile against the test suite ==")
    profiler = Profiler(RedFatOptions())
    report = profiler.profile(
        stripped,
        executions=[lambda binary, runtime: program.run(
            args=[0], binary=binary, runtime=runtime)],
    )
    allowlist = report.allowlist
    fp_sites = report.observed_false_positive_sites()
    print(f"eligible sites: {len(report.eligible_sites)}; "
          f"allow-listed: {len(allowlist)}; "
          f"always-failing (anti-idiom) sites: {len(fp_sites)}")

    with tempfile.TemporaryDirectory() as tmp:
        allow_path = Path(tmp) / "allow.lst"
        allowlist.save(allow_path)
        print(f"wrote {allow_path.name}:")
        print("\n".join(f"    {line}"
                        for line in allow_path.read_text().splitlines()[:5]))
        allowlist = AllowList.load(allow_path)

    print("\n== phase 2: production hardening with the allow-list ==")
    production = profiler.harden(stripped, report)
    lowfat = production.protected_sites(PROT_LOWFAT)
    redzone = production.protected_sites(PROT_REDZONE)
    print(f"sites with full (Redzone)+(LowFat): {len(lowfat)}; "
          f"(Redzone)-only fallback: {len(redzone)}")

    clean = program.run(args=[0], binary=production.binary,
                        runtime=production.create_runtime(mode="abort"))
    print(f"legitimate run: exit={clean.status} output={clean.output} "
          "-> no false positive")

    try:
        program.run(args=[1], binary=production.binary,
                    runtime=production.create_runtime(mode="abort"))
        print("real bug: NOT detected (unexpected)")
    except GuestMemoryError as error:
        print(f"real bug:  still detected -> {error}")


if __name__ == "__main__":
    main()
