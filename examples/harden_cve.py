#!/usr/bin/env python3
"""Reproduce the paper's CVE studies (Table 2) interactively.

For each of the four CVEs the paper evaluates, this example:

1. runs the vulnerable program with the attacker's crafted input under
   *no* protection — the overflow lands silently in an adjacent object;
2. runs it under the Memcheck-style redzone-only baseline — the access
   skips the redzone and is **missed**;
3. runs the RedFat-hardened binary — the bad pointer arithmetic is
   caught no matter how large the offset.

Run:  python examples/harden_cve.py
"""

import repro.api as redfat
from repro.baselines import MemcheckVM
from repro.errors import GuestMemoryError
from repro.workloads.cves import CVE_CASES


def main() -> None:
    for case in CVE_CASES:
        print(f"=== {case.cve} ({case.program_name}) ===")
        print(f"    {case.description}")
        program = case.compile()

        plain = program.run(args=case.malicious_args)
        corruption = "silent corruption" if "-1" in plain.output else "ran"
        print(f"  unprotected : exit={plain.status} -> {corruption}")

        memcheck = MemcheckVM().run(
            program.binary,
            setup=lambda cpu: program.poke_args(cpu, case.malicious_args),
        )
        verdict = "DETECTED" if memcheck.detected else "missed (redzone skipped)"
        print(f"  memcheck    : {verdict}")

        hardened = redfat.harden(program.binary.strip(), options="fully")
        try:
            program.run(
                args=case.malicious_args, binary=hardened.binary,
                runtime=hardened.create_runtime(mode="abort"),
            )
            print("  redfat      : missed (unexpected!)")
        except GuestMemoryError as error:
            print(f"  redfat      : DETECTED -> {error}")

        benign = program.run(
            args=case.benign_args, binary=hardened.binary,
            runtime=hardened.create_runtime(mode="abort"),
        )
        print(f"  benign input: exit={benign.status} (no false alarm)\n")


if __name__ == "__main__":
    main()
