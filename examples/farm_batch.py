#!/usr/bin/env python3
"""Hardening farm: batch instrumentation with a content-addressed cache.

Hardening a fleet of binaries one ``api.harden`` call at a time wastes
work twice over: identical inputs are re-instrumented from scratch, and
independent inputs run one after another.  The farm fixes both:

1. every artifact is cached under ``sha256(binary bytes)`` + the
   canonical options hash, so byte-identical work happens once — across
   batches, and across processes when the cache lives on disk;
2. within a batch, duplicate jobs collapse onto one leader (dedup);
3. the rest fan out over a crash-isolated worker pool (``--jobs``-style
   parallelism with per-job timeouts and one retry);
4. results are byte-identical to serial ``api.harden`` — caching and
   parallelism are pure mechanism, never policy.

Run:  python examples/farm_batch.py
"""

import tempfile

import repro.api as redfat
from repro.cc import compile_source
from repro.farm import Farm
from repro.telemetry import Telemetry

# A little fleet: three distinct services plus one byte-identical twin
# (think: the same library shipped in two images).
TEMPLATE = """
int main() {
    int *buffer = malloc(%d);
    for (int i = 0; i < 4; i = i + 1) buffer[i] = i + arg(0);
    print(buffer[0] + buffer[3]);
    free(buffer);
    return 0;
}
"""
FLEET = [("alpha", 32), ("beta", 48), ("gamma", 64), ("alpha-copy", 32)]


def main() -> None:
    print("== build the fleet ==")
    programs = []
    for name, size in FLEET:
        program = compile_source(TEMPLATE % size)
        programs.append(program)
        text = program.binary.segment(".text")
        print(f"  {name:10s} {len(text.data)} bytes of code")

    labels = [name for name, _ in FLEET]
    with tempfile.TemporaryDirectory() as cache_dir:
        telemetry = Telemetry(meta={"kind": "farm", "example": "farm_batch"})

        print("\n== batch 1: cold cache, 2 workers ==")
        with Farm(jobs=2, cache_dir=cache_dir, telemetry=telemetry) as farm:
            report = farm.harden_many(programs, labels=labels)
            for outcome in report.outcomes:
                print(f"  {outcome.label:10s} source={outcome.source:6s} "
                      f"{len(outcome.result.rewrite.patched)} patches")
            stats = report.as_dict()
            print(f"  cache: {stats['cache']['hits']} hits, "
                  f"{stats['cache']['stores']} stores; "
                  f"dedup: {stats['stats']['dedup']}")
            assert report.stats.dedup == 1  # alpha-copy rode alpha's job

            print("\n== batch 2: same farm, warm cache ==")
            again = farm.harden_many(programs, labels=labels)
            hits = sum(1 for outcome in again.outcomes if outcome.cached)
            print(f"  {hits}/{len(again.outcomes)} jobs served from cache "
                  "(zero re-instrumentation)")
            assert hits == len(again.outcomes)

        print("\n== a fresh process: the disk tier remembers ==")
        with Farm(jobs=0, cache_dir=cache_dir) as rehydrated:
            third = rehydrated.harden_many(programs, labels=labels)
        cached = sum(1 for outcome in third.outcomes if outcome.cached)
        print(f"  {cached}/{len(third.outcomes)} artifacts rehydrated "
              f"from {cache_dir.split('/')[-1]}/")

    print("\n== the contract: farm output == serial api.harden ==")
    serial = redfat.harden(programs[0])
    farmed = report.outcomes[0].result
    identical = serial.binary.to_bytes() == farmed.binary.to_bytes()
    print(f"  byte-identical hardened binaries: {identical}")
    assert identical

    print(f"\ntelemetry: farm.cache.hits="
          f"{telemetry.counters.get('farm.cache.hits', 0)} "
          f"farm.dedup={telemetry.counters.get('farm.dedup', 0)} "
          f"farm.jobs={telemetry.counters.get('farm.jobs', 0)}")
    print("done: batch hardening costs one instrumentation per distinct "
          "(binary, options) pair, ever.")


if __name__ == "__main__":
    main()
