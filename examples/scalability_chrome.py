#!/usr/bin/env python3
"""Scalability demo (paper §7.3): hardening a very large binary.

Generates the browser stand-in (14 Kraken kernels + hundreds of filler
functions), hardens it with the write-only configuration the paper
deploys on Google Chrome, prints the rewriting statistics, and measures
the Kraken overhead chart of Fig. 8.

Run:  python examples/scalability_chrome.py [fillers]
"""

import sys
import time

from repro.bench.figure8 import CHROME_OPTIONS
from repro.bench.reporting import bar_chart
from repro.core import RedFat
from repro.workloads.chrome import KRAKEN_BENCHMARKS, build_chrome, kraken_args


def main() -> None:
    fillers = int(sys.argv[1]) if len(sys.argv) > 1 else 250
    print(f"== generating the browser stand-in ({fillers} filler functions) ==")
    program = build_chrome(fillers)
    text = program.binary.segment(".text")
    print(f"text segment: {len(text.data)} bytes")

    print("\n== hardening (write-only checks, as deployed on Chrome) ==")
    start = time.time()
    hardened = RedFat(CHROME_OPTIONS).instrument(program.binary.strip())
    elapsed = time.time() - start
    print(f"instrumented in {elapsed:.2f}s: "
          f"{len(hardened.rewrite.patched)} sites patched, "
          f"{len(hardened.rewrite.skipped)} skipped, "
          f"image {program.binary.total_size()} -> "
          f"{hardened.binary.total_size()} bytes")

    print("\n== Kraken under the hardened binary ==")
    labels = []
    values = []
    for name in KRAKEN_BENCHMARKS:
        args = kraken_args(name)
        baseline = program.run(args=args)
        guarded = program.run(
            args=args, binary=hardened.binary,
            runtime=hardened.create_runtime(mode="log"),
        )
        assert guarded.status == baseline.status
        overhead = guarded.instructions / baseline.instructions
        labels.append(name)
        values.append(100.0 * overhead)
    print(bar_chart(labels, values, unit="%"))
    geomean = 1.0
    for value in values:
        geomean *= value / 100.0
    geomean **= 1.0 / len(values)
    print(f"\ngeometric mean: {geomean:.2f}x (paper: 1.28x)")


if __name__ == "__main__":
    main()
