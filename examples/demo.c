// A small heap-heavy MiniC program used by the CI metrics job and the
// README quick-start: enough loads/stores that every pipeline phase has
// real work (candidates to analyse, groups to batch, checks to merge).
//
//   redfat harden examples/demo.c -o demo.hard.melf --metrics out.json
//   python -m repro.telemetry.validate out.json
//   python -m repro.telemetry.report out.json

int checksum(int *data, char *tag, int n) {
    int s = 0;
    for (int i = 0; i < n; i = i + 1)
        s = (s + data[i] * 7 + tag[i]) & 0xffffff;
    return s;
}

int main() {
    int n = 32;
    int *data = malloc(8 * n);
    char *tag = malloc(n);
    for (int i = 0; i < n; i = i + 1) {
        data[i] = i * i + 3;
        tag[i] = 'a' + i % 26;
    }
    int *copy = malloc(8 * n);
    memcpy(copy, data, 8 * n);
    int s = checksum(copy, tag, n);
    free(copy);
    free(data);
    free(tag);
    print(s);
    return 0;
}
