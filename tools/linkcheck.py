"""Internal link checker for the repo's markdown docs.

Verifies that every relative markdown link — ``[text](path)`` and
``[text](path#anchor)`` — resolves to a file in the repository, and
that anchors into markdown files match an actual heading. External
links (``http(s)://``) are ignored: CI must not depend on the network.

Run: ``python tools/linkcheck.py [FILES...]`` (default: the top-level
docs). Exits non-zero listing every broken link.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path
from typing import List

DEFAULT_DOCS = [
    "README.md",
    "ARCHITECTURE.md",
    "DESIGN.md",
    "EXPERIMENTS.md",
    "ROADMAP.md",
    "PAPER.md",
]

#: Inline markdown links; images share the syntax (leading ``!`` ignored).
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def _anchor(text: str) -> str:
    """GitHub's heading-to-anchor slug: lowercase, spaces to dashes,
    punctuation dropped."""
    slug = text.strip().lower()
    slug = re.sub(r"[^\w\- ]", "", slug)
    return slug.replace(" ", "-")


def heading_anchors(path: Path) -> set:
    anchors = set()
    in_fence = False
    for line in path.read_text().splitlines():
        if line.lstrip().startswith("```"):
            in_fence = not in_fence
            continue
        if not in_fence and line.startswith("#"):
            anchors.add(_anchor(line.lstrip("#")))
    return anchors


def check_file(path: Path, root: Path) -> List[str]:
    problems = []
    for target in _LINK.findall(path.read_text()):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        raw, _, anchor = target.partition("#")
        if not raw:  # same-file anchor
            destination = path
        else:
            destination = (path.parent / raw).resolve()
        relative = path.relative_to(root)
        if not destination.exists():
            problems.append(f"{relative}: broken link -> {target}")
            continue
        if anchor and destination.suffix == ".md":
            if _anchor(anchor) not in heading_anchors(destination):
                problems.append(
                    f"{relative}: missing anchor -> {target}"
                )
    return problems


def main(argv: List[str]) -> int:
    root = Path(__file__).resolve().parent.parent
    names = argv or DEFAULT_DOCS
    problems = []
    checked = 0
    for name in names:
        path = (root / name).resolve()
        if not path.exists():
            problems.append(f"{name}: file not found")
            continue
        checked += 1
        problems.extend(check_file(path, root))
    for problem in problems:
        print(problem)
    if not problems:
        print(f"linkcheck: {checked} file(s) clean")
    return 1 if problems else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
