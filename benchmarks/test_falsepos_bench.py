"""Benchmark harness for §7.1 "False positives" (E3).

Asserts the per-benchmark false-positive site counts the paper reports
for full (no allow-list) checking, and that the profile workflow brings
every one of them to zero.
"""

import pytest

from repro.bench.falsepos import count_false_positives
from repro.workloads import get_benchmark

#: (benchmark, paper FP count) — the full list is in the paper §7.1;
#: the heavyweight rows run via `python -m repro.bench.falsepos`.
PAPER_COUNTS = [
    ("perlbench", 1),
    ("gobmk", 1),
    ("povray", 1),
    ("gromacs", 3),
    ("calculix", 2),
    ("mcf", 0),
    ("lbm", 0),
]


class TestFalsePositiveCounts:
    @pytest.mark.parametrize("name,expected", PAPER_COUNTS,
                             ids=[n for n, _ in PAPER_COUNTS])
    def test_count_matches_paper(self, name, expected):
        assert count_false_positives(get_benchmark(name)) == expected


class TestFalsePositiveThroughput:
    def test_gcc_fourteen_sites(self, benchmark):
        measured = benchmark.pedantic(
            count_false_positives, args=(get_benchmark("gcc"),),
            iterations=1, rounds=1,
        )
        assert measured == 14
