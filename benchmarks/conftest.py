"""Shared fixtures for the pytest-benchmark harnesses.

These benchmarks time the *host-side* pipeline (instrumentation and
simulated execution).  The paper-facing numbers — slow-down factors as
executed-instruction ratios — are printed by the ``repro.bench`` modules
and asserted on here; pytest-benchmark provides wall-clock tracking so
regressions in the tooling itself are visible too.
"""

import pytest

from repro.workloads import get_benchmark


@pytest.fixture(scope="session")
def mcf_program():
    return get_benchmark("mcf").compile()


@pytest.fixture(scope="session")
def gobmk_program():
    return get_benchmark("gobmk").compile()
