"""Benchmark harness for Table 2 (non-incremental overflows).

Asserts the paper's headline: RedFat detects 100% of the CVE/Juliet
cases, the Memcheck baseline 0% — and extends the table into the
allocator-zoo shootout matrix (``redfat shootout``): every registry
backend over the same workloads, with overhead and memory columns.
"""

import pytest

from repro.bench.shootout import run_shootout, validate_report
from repro.bench.table2 import memcheck_detects, redfat_detects, run
from repro.workloads.cves import CVE_CASES
from repro.workloads.juliet import generate_cases


class TestCVEDetection:
    @pytest.mark.parametrize("case", CVE_CASES, ids=lambda c: c.cve)
    def test_redfat_detects_memcheck_misses(self, case):
        program = case.compile()
        assert redfat_detects(program, case.malicious_args)
        assert not memcheck_detects(program, case.malicious_args)

    @pytest.mark.parametrize("case", CVE_CASES, ids=lambda c: c.cve)
    def test_benign_inputs_clean(self, case):
        program = case.compile()
        assert not redfat_detects(program, case.benign_args)
        assert not memcheck_detects(program, case.benign_args)


class TestJulietSubset:
    def test_every_shape_and_size(self):
        cases = generate_cases(480)
        # One variant from each of the 24 distinct source programs.
        seen = {}
        for case in cases:
            seen.setdefault((case.shape, case.victim_size), case)
        assert len(seen) == 24
        for case in seen.values():
            program = case.compile()
            assert redfat_detects(program, case.malicious_args), case.case_id
            assert not memcheck_detects(program, case.malicious_args), case.case_id


class TestTable2Throughput:
    def test_table2_run(self, benchmark):
        result = benchmark.pedantic(run, kwargs={"juliet_count": 24},
                                    iterations=1, rounds=1)
        for row in result.rows:
            assert row.redfat_detected == row.total
            assert row.memcheck_detected == 0
        assert result.benign_clean


class TestShootoutMatrix:
    """The Table-2 extension: the zoo's detection/overhead/memory matrix."""

    @pytest.fixture(scope="class")
    def matrix(self):
        return run_shootout(juliet_count=12, seed=1)

    def _row(self, matrix, name):
        return next(row for row in matrix.rows if row.name == name)

    def test_covers_the_whole_zoo(self, matrix):
        names = {row.name for row in matrix.rows}
        assert {"glibc", "redfat", "s2malloc", "mesh", "camp",
                "frp", "shadow"} <= names

    def test_report_is_schema_valid(self, matrix):
        assert validate_report(matrix.as_dict()) == []

    def test_redfat_detects_everything(self, matrix):
        row = self._row(matrix, "redfat")
        assert row.detected == matrix.workloads
        assert row.deployment == "hardened-binary"

    def test_glibc_baseline_misses_everything(self, matrix):
        row = self._row(matrix, "glibc")
        assert row.detected == 0
        assert row.overhead == pytest.approx(1.0, rel=0.01)

    def test_shadow_blind_to_nonincremental(self, matrix):
        # The paper's Problem #1: redzone-skipping offsets look valid.
        row = self._row(matrix, "shadow")
        assert row.detected == 0
        assert row.overhead > 2.0  # but it pays full DBI cost anyway

    def test_probabilistic_backends_stop_overflows(self, matrix):
        # Randomized placement (s2malloc guard slack, FRP's one-time
        # random windows) stops most Table-2 offsets on these seeds.
        for name in ("s2malloc", "frp"):
            row = self._row(matrix, name)
            assert row.detected + row.crashed > matrix.workloads // 2, name

    def test_mesh_trades_detection_for_memory(self, matrix):
        row = self._row(matrix, "mesh")
        assert row.detected == 0  # bad frees only; none in this suite
        assert row.overhead < 2.0

    def test_no_false_positives_anywhere(self, matrix):
        for row in matrix.rows:
            assert row.false_positives == 0, row.name
            assert row.errors == 0, row.name
