"""Benchmark harness for Table 2 (non-incremental overflows).

Asserts the paper's headline: RedFat detects 100% of the CVE/Juliet
cases, the Memcheck baseline 0%.
"""

import pytest

from repro.bench.table2 import memcheck_detects, redfat_detects, run
from repro.workloads.cves import CVE_CASES
from repro.workloads.juliet import generate_cases


class TestCVEDetection:
    @pytest.mark.parametrize("case", CVE_CASES, ids=lambda c: c.cve)
    def test_redfat_detects_memcheck_misses(self, case):
        program = case.compile()
        assert redfat_detects(program, case.malicious_args)
        assert not memcheck_detects(program, case.malicious_args)

    @pytest.mark.parametrize("case", CVE_CASES, ids=lambda c: c.cve)
    def test_benign_inputs_clean(self, case):
        program = case.compile()
        assert not redfat_detects(program, case.benign_args)
        assert not memcheck_detects(program, case.benign_args)


class TestJulietSubset:
    def test_every_shape_and_size(self):
        cases = generate_cases(480)
        # One variant from each of the 24 distinct source programs.
        seen = {}
        for case in cases:
            seen.setdefault((case.shape, case.victim_size), case)
        assert len(seen) == 24
        for case in seen.values():
            program = case.compile()
            assert redfat_detects(program, case.malicious_args), case.case_id
            assert not memcheck_detects(program, case.malicious_args), case.case_id


class TestTable2Throughput:
    def test_table2_run(self, benchmark):
        result = benchmark.pedantic(run, kwargs={"juliet_count": 24},
                                    iterations=1, rounds=1)
        for row in result.rows:
            assert row.redfat_detected == row.total
            assert row.memcheck_detected == 0
        assert result.benign_clean
