"""Benchmark harness for Figure 8 (Chrome scalability + Kraken).

Times the instrumentation of the large browser stand-in and a subset of
the Kraken workloads, asserting the paper's claims: the big binary is
instrumentable, runs correctly afterwards, and write-only overhead stays
near the paper's 1.28x geometric mean.
"""

import pytest

from repro.bench.figure8 import CHROME_OPTIONS, run
from repro.core import RedFat
from repro.workloads.chrome import KRAKEN_BENCHMARKS, build_chrome, kraken_args


@pytest.fixture(scope="module")
def chrome_program():
    return build_chrome(120)


@pytest.fixture(scope="module")
def chrome_hardened(chrome_program):
    return RedFat(CHROME_OPTIONS).instrument(chrome_program.binary.strip())


class TestScalability:
    def test_instrument_large_binary(self, benchmark, chrome_program):
        stripped = chrome_program.binary.strip()
        tool = RedFat(CHROME_OPTIONS)
        result = benchmark.pedantic(tool.instrument, args=(stripped,),
                                    iterations=1, rounds=3)
        assert len(result.rewrite.patched) > 100
        # Nothing silently dropped beyond the explicit skip accounting.
        assert result.binary.total_size() > stripped.total_size()

    def test_all_kraken_kernels_still_run(self, chrome_program, chrome_hardened):
        for name in KRAKEN_BENCHMARKS:
            args = kraken_args(name)
            baseline = chrome_program.run(args=args)
            hardened = chrome_program.run(
                args=args, binary=chrome_hardened.binary,
                runtime=chrome_hardened.create_runtime(mode="log"),
            )
            assert hardened.status == baseline.status, name


class TestKrakenOverhead:
    @pytest.mark.parametrize(
        "name", ["audio-fft", "imaging-gaussian-blur", "crypto-aes"]
    )
    def test_kernel_hardened_run(self, benchmark, name, chrome_program,
                                 chrome_hardened):
        args = kraken_args(name)

        def run_hardened():
            return chrome_program.run(
                args=args, binary=chrome_hardened.binary,
                runtime=chrome_hardened.create_runtime(mode="log"),
            )

        result = benchmark(run_hardened)
        assert result.status == chrome_program.run(args=args).status

    def test_geomean_near_paper(self):
        result = run(filler_functions=120)
        # Paper: 1.28x; allow a generous band for the simulated substrate.
        assert 1.0 < result.geomean < 2.0
        assert result.sites_patched > 100
